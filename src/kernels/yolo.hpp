// CNN inference workloads standing in for YOLOv2 / YOLOv3 (paper §III-B):
// stacks of 3x3 convolutions (leaky-ReLU, optional 2x2 max-pool) feeding a
// global-average classification head. Convolution dominates the dynamic mix
// (>75% multiply-add, like the paper's profiled YOLO), the kernels model
// vendor-library code (no SASSIFI on Kepler), and — crucially — the SDC
// criterion is classification-aware: a fault whose perturbation does not
// change the predicted class (within the network's tolerance) is not an
// error, which is why CNN AVFs are far below matrix-multiplication AVFs.
// YOLOv3-lite is deeper and stricter (more accurate network => less fault
// tolerance), reproducing the paper's v3 > v2 AVF ordering.
#pragma once

#include <vector>

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

struct ConvSpec {
  unsigned in_ch = 0;
  unsigned out_ch = 0;
  bool pool_after = false;
};

class ConvNet : public core::Workload {
 public:
  ConvNet(core::WorkloadConfig config, core::Precision precision,
          std::string base_name, std::vector<ConvSpec> layers,
          double score_tolerance, unsigned input_dim = 8, unsigned classes = 10);

  /// YOLOv2-lite: 3 conv layers, permissive tolerance.
  static std::unique_ptr<ConvNet> yolov2(core::WorkloadConfig config,
                                         core::Precision precision);
  /// YOLOv3-lite: 6 conv layers, strict tolerance.
  static std::unique_ptr<ConvNet> yolov3(core::WorkloadConfig config,
                                         core::Precision precision);

  std::string base_name() const override { return base_; }
  core::Precision precision() const override { return precision_; }
  bool uses_library() const override { return true; }
  bool fork_safe() const override { return true; }

  /// Class scores of the last completed trial (decoded to float).
  std::vector<float> read_scores(sim::Device& dev) const;

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;
  bool verify(sim::Device& dev) override;
  void capture_golden(sim::Device& dev) override;

 private:
  unsigned layer_dim(unsigned layer) const;  // spatial dim entering `layer`

  core::Precision precision_;
  std::string base_;
  std::vector<ConvSpec> layers_;
  double tolerance_;
  unsigned input_dim_;
  unsigned classes_;

  std::vector<isa::Program> conv_;   // one per layer (static dims/channels)
  std::vector<isa::Program> pool_;   // one per pooled layer
  isa::Program head_;

  std::vector<std::uint32_t> weights_;  // per layer
  std::vector<std::uint32_t> biases_;
  std::uint32_t act_[2] = {0, 0};
  std::uint32_t scores_ = 0;
  std::vector<float> golden_scores_;
};

}  // namespace gpurel::kernels
