#include "kernels/matmul.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "kernels/elem.hpp"

namespace gpurel::kernels {

using core::Precision;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::MemWidth;
using isa::Pred;
using isa::Reg;
using isa::RegPair;

namespace {

/// Upload an n*n matrix of small random values of the given precision.
std::uint32_t upload_matrix(sim::Device& dev, Precision p, unsigned n, Rng& rng) {
  auto bytes = pack_elements(p, static_cast<std::size_t>(n) * n,
                             [&](std::size_t) { return rng.uniform(-0.5, 0.5); });
  return dev.alloc_copy<std::uint8_t>(bytes);
}

}  // namespace

// ---------------------------------------------------------------------------
// MxM (naive)
// ---------------------------------------------------------------------------

MxM::MxM(core::WorkloadConfig config, Precision precision, unsigned n)
    : Workload(std::move(config)), precision_(precision) {
  n_ = n ? n : std::max(16u, static_cast<unsigned>(48 * config_.scale) / 16 * 16);
  if (n_ % 16 != 0) throw std::invalid_argument("MxM: n must be a multiple of 16");
  if (precision_ == Precision::Int32)
    throw std::invalid_argument("MxM: paper variants are H/F/D");
}

void MxM::build_programs() {
  KernelBuilder b(name(), config_.profile);
  ElemEmitter e(b, precision_);
  const unsigned esz = e.esz();

  Reg a_base = b.load_param(0), b_base = b.load_param(1), c_base = b.load_param(2);
  Reg n = b.load_param(3);

  Reg tid_x = b.tid_x();
  Reg cta_x = b.ctaid_x();
  Reg ntid_x = b.ntid_x();
  Reg col = b.reg();
  b.imad(col, cta_x, ntid_x, tid_x);
  Reg tid_y = b.reg(), cta_y = b.reg(), ntid_y = b.reg();
  b.s2r(tid_y, isa::SpecialReg::TID_Y);
  b.s2r(cta_y, isa::SpecialReg::CTAID_Y);
  b.s2r(ntid_y, isa::SpecialReg::NTID_Y);
  Reg row = b.reg();
  b.imad(row, cta_y, ntid_y, tid_y);

  // addr_a walks A row `row`; addr_b walks B column `col`.
  Reg rown = b.reg();
  b.imul(rown, row, n);
  Reg addr_a = b.reg();
  b.addr_index(addr_a, a_base, rown, esz);
  Reg addr_b = b.reg();
  b.addr_index(addr_b, b_base, col, esz);
  Reg stride_b = b.reg();
  b.imuli(stride_b, n, static_cast<std::int32_t>(esz));

  Elem acc = e.alloc(), va = e.alloc(), vb = e.alloc();
  e.constant(acc, 0.0);
  // The K loop is unrolled per the compiler profile with immediate-offset
  // loads along the A row, like the optimizer's generated SASS; B advances
  // by a whole unroll stride per iteration.
  const unsigned unroll = std::max(1u, b.options().unroll);
  Reg k = b.reg();
  b.for_range_static(
      k, 0, static_cast<std::int32_t>(n_ / unroll), 1, [&] {
        for (unsigned u = 0; u < unroll; ++u) {
          e.load(va, addr_a, static_cast<std::int32_t>(u * esz));
          e.load(vb, addr_b);
          e.mul_add(acc, va, vb, acc);
          if (u + 1 < unroll) b.iadd(addr_b, addr_b, stride_b);
        }
        b.iaddi(addr_a, addr_a, static_cast<std::int32_t>(unroll * esz));
        b.iadd(addr_b, addr_b, stride_b);
      });

  Reg out_idx = b.reg();
  b.iadd(out_idx, rown, col);
  Reg addr_c = b.reg();
  b.addr_index(addr_c, c_base, out_idx, esz);
  e.store(addr_c, acc);
  program_ = b.build();
  register_program(&program_);
}

void MxM::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  a_ = upload_matrix(dev, precision_, n_, rng);
  b_ = upload_matrix(dev, precision_, n_, rng);
  const std::uint32_t bytes = n_ * n_ * core::precision_bytes(precision_);
  c_ = dev.alloc(bytes);
  register_output(c_, bytes);
}

void MxM::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  sim::KernelLaunch kl{&program_, {n_ / 16, n_ / 16}, {16, 16}, 0, {a_, b_, c_, n_}};
  runner.launch(kl);
}

// ---------------------------------------------------------------------------
// Gemm (tiled, library-modeled)
// ---------------------------------------------------------------------------

core::Workload::OutputGeometry MxM::output_geometry() const {
  OutputGeometry g = Workload::output_geometry();
  g.rows = n_;
  g.cols = n_;
  return g;
}

Gemm::Gemm(core::WorkloadConfig config, Precision precision, unsigned n)
    : Workload(std::move(config)), precision_(precision) {
  tile_ = 16;
  n_ = n ? n : std::max(2 * tile_, static_cast<unsigned>(64 * config_.scale) /
                                       tile_ * tile_);
  if (n_ % tile_ != 0) throw std::invalid_argument("Gemm: n must be tile-aligned");
  if (precision_ == Precision::Int32)
    throw std::invalid_argument("Gemm: paper variants are H/F/D");
}

void Gemm::build_programs() {
  KernelBuilder b(name(), config_.profile);
  ElemEmitter e(b, precision_);
  const unsigned esz = e.esz();
  const unsigned T = tile_;

  const std::uint32_t s_a = b.shared_alloc(T * T * esz, 8);
  const std::uint32_t s_b = b.shared_alloc(T * T * esz, 8);
  // The vendor library configures far more shared memory and registers than
  // the textbook tiling needs (double buffering, wide register blocking);
  // reserve footprints matching Table I so occupancy behaves like the paper.
  const bool kepler = config_.gpu.arch == arch::Architecture::Kepler;
  const std::uint32_t target_shared = kepler ? 31u * 1024 : 62u * 1024;
  if (target_shared > s_b + T * T * esz)
    b.shared_alloc(target_shared - (s_b + T * T * esz));
  unsigned reserve = 0;
  if (kepler) reserve = 248;
  else if (precision_ == Precision::Half) reserve = 127;
  else if (precision_ == Precision::Single) reserve = 134;
  else reserve = 234;
  b.reserve_regs(reserve);

  Reg a_base = b.load_param(0), b_base = b.load_param(1), c_base = b.load_param(2);
  Reg n = b.load_param(3);

  Reg tx = b.tid_x();
  Reg ty = b.reg();
  b.s2r(ty, isa::SpecialReg::TID_Y);
  Reg bx = b.ctaid_x();
  Reg by = b.reg();
  b.s2r(by, isa::SpecialReg::CTAID_Y);

  // Register blocking: a T x T/2 thread block where each thread owns TWO
  // C rows (ty and ty+T/2), reusing every staged B value for two FMAs —
  // the library-kernel trick that makes GEMM's dynamic mix FMA-heavy.
  const unsigned H = T / 2;
  Reg col = b.reg(), row = b.reg();
  Reg tconst = b.reg();
  b.movi(tconst, static_cast<std::int32_t>(T));
  b.imad(col, bx, tconst, tx);
  b.imad(row, by, tconst, ty);  // first owned row; second is row + H

  Reg rown = b.reg();
  b.imul(rown, row, n);
  Reg half_rows = b.reg();  // H*n*esz: byte offset between the two owned rows
  b.imuli(half_rows, n, static_cast<std::int32_t>(H * esz));

  // Per-step global addresses: A[row][kt*T + tx], B[kt*T + ty][col].
  Reg addr_a = b.reg();  // A + (row*n + tx)*esz, advances by T*esz each step
  Reg tmp = b.reg();
  b.iadd(tmp, rown, tx);
  b.addr_index(addr_a, a_base, tmp, esz);
  Reg addr_a2 = b.reg();
  b.iadd(addr_a2, addr_a, half_rows);
  Reg addr_b = b.reg();  // B + (ty*n + col)*esz, advances by T*n*esz each step
  b.imul(tmp, ty, n);
  b.iadd(tmp, tmp, col);
  b.addr_index(addr_b, b_base, tmp, esz);
  Reg addr_b2 = b.reg();
  b.iadd(addr_b2, addr_b, half_rows);
  Reg step_b = b.reg();
  b.imuli(step_b, n, static_cast<std::int32_t>(T * esz));

  // Shared tile addresses (each thread stages two cells per tile).
  const auto s_half = static_cast<std::int32_t>(H * T * esz);
  Reg s_a_store = b.reg();  // &sA[ty][tx]
  b.imuli(tmp, ty, static_cast<std::int32_t>(T));
  b.iadd(tmp, tmp, tx);
  Reg sbase = b.reg();
  b.movi(sbase, static_cast<std::int32_t>(s_a));
  b.addr_index(s_a_store, sbase, tmp, esz);
  Reg s_b_store = b.reg();  // &sB[ty][tx]
  b.movi(sbase, static_cast<std::int32_t>(s_b));
  b.addr_index(s_b_store, sbase, tmp, esz);

  Reg s_a_row = b.reg();  // &sA[ty][0]
  b.imuli(tmp, ty, static_cast<std::int32_t>(T));
  b.movi(sbase, static_cast<std::int32_t>(s_a));
  b.addr_index(s_a_row, sbase, tmp, esz);
  Reg s_b_col = b.reg();  // &sB[0][tx]
  b.movi(sbase, static_cast<std::int32_t>(s_b));
  b.addr_index(s_b_col, sbase, tx, esz);

  Elem acc0 = e.alloc(), acc1 = e.alloc();
  Elem va0 = e.alloc(), va1 = e.alloc(), vb = e.alloc(), staged = e.alloc();
  e.constant(acc0, 0.0);
  e.constant(acc1, 0.0);

  Reg kt = b.reg();
  b.for_range_static(kt, 0, static_cast<std::int32_t>(n_ / T), 1, [&] {
    e.load(staged, addr_a);
    e.store_shared(s_a_store, staged);
    e.load(staged, addr_a2);
    e.store_shared(s_a_store, staged, s_half);
    e.load(staged, addr_b);
    e.store_shared(s_b_store, staged);
    e.load(staged, addr_b2);
    e.store_shared(s_b_store, staged, s_half);
    b.bar();
    // Fully unrolled inner product over the staged tiles with immediate
    // offsets — no loop bookkeeping, as in the library's generated SASS;
    // each B value feeds both owned rows.
    for (unsigned k = 0; k < T; ++k) {
      e.load_shared(va0, s_a_row, static_cast<std::int32_t>(k * esz));
      e.load_shared(va1, s_a_row, static_cast<std::int32_t>(k * esz) + s_half);
      e.load_shared(vb, s_b_col, static_cast<std::int32_t>(k * T * esz));
      e.mul_add(acc0, va0, vb, acc0);
      e.mul_add(acc1, va1, vb, acc1);
    }
    b.bar();
    b.iaddi(addr_a, addr_a, static_cast<std::int32_t>(T * esz));
    b.iaddi(addr_a2, addr_a2, static_cast<std::int32_t>(T * esz));
    b.iadd(addr_b, addr_b, step_b);
    b.iadd(addr_b2, addr_b2, step_b);
  });

  Reg out_idx = b.reg();
  b.iadd(out_idx, rown, col);
  Reg addr_c = b.reg();
  b.addr_index(addr_c, c_base, out_idx, esz);
  e.store(addr_c, acc0);
  Reg addr_c2 = b.reg();
  b.iadd(addr_c2, addr_c, half_rows);
  e.store(addr_c2, acc1);
  program_ = b.build();
  register_program(&program_);
}

void Gemm::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  a_ = upload_matrix(dev, precision_, n_, rng);
  b_ = upload_matrix(dev, precision_, n_, rng);
  const std::uint32_t bytes = n_ * n_ * core::precision_bytes(precision_);
  c_ = dev.alloc(bytes);
  register_output(c_, bytes);
}

void Gemm::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  // T x T/2 threads per block: each thread computes two C rows.
  sim::KernelLaunch kl{&program_, {n_ / tile_, n_ / tile_},
                       {tile_, tile_ / 2}, 0, {a_, b_, c_, n_}};
  runner.launch(kl);
}

// ---------------------------------------------------------------------------
// GemmMma (tensor cores)
// ---------------------------------------------------------------------------

core::Workload::OutputGeometry Gemm::output_geometry() const {
  OutputGeometry g = Workload::output_geometry();
  g.rows = n_;
  g.cols = n_;
  return g;
}

GemmMma::GemmMma(core::WorkloadConfig config, Precision precision, unsigned n)
    : Workload(std::move(config)), precision_(precision) {
  if (precision_ != Precision::Half && precision_ != Precision::Single)
    throw std::invalid_argument("GemmMma: precision must be Half or Single");
  if (!config_.gpu.has_tensor)
    throw std::invalid_argument("GemmMma: " + config_.gpu.name +
                                " has no tensor cores");
  n_ = n ? n : 64;
  // Tile mapping uses shifts: n/16 must be a power of two.
  const unsigned tiles = n_ / 16;
  if (n_ % 16 != 0 || (tiles & (tiles - 1)) != 0)
    throw std::invalid_argument("GemmMma: n/16 must be a power of two");
}

void GemmMma::build_programs() {
  const bool half = precision_ == Precision::Half;
  const unsigned esz_in = half ? 2 : 4;
  const unsigned tiles_per_row = n_ / 16;
  unsigned tiles_log2 = 0;
  while ((tiles_per_row >> tiles_log2) != 1) ++tiles_log2;

  KernelBuilder b(name(), config_.profile);
  b.reserve_regs(96);  // library-style footprint
  Reg a_base = b.load_param(0), b_base = b.load_param(1), c_base = b.load_param(2);
  Reg n = b.load_param(3);

  Reg lane = b.reg();
  b.s2r(lane, isa::SpecialReg::LANEID);
  Reg gtid = b.global_tid_x();
  Reg warp = b.reg();
  b.shr(warp, gtid, 5);
  Reg trow = b.reg(), tcol = b.reg();
  b.shr(trow, warp, tiles_log2);
  b.landi(tcol, warp, static_cast<std::int32_t>(tiles_per_row - 1));
  Reg row0 = b.reg(), col0 = b.reg();
  b.shl(row0, trow, 4);
  b.shl(col0, tcol, 4);

  Reg fa = b.reg_block(4), fb = b.reg_block(4);
  const unsigned acc_regs = half ? 4 : 8;
  Reg facc = b.reg_block(acc_regs);
  for (unsigned k = 0; k < acc_regs; ++k) {
    Reg r{static_cast<std::uint8_t>(facc.index + k)};
    if (half) b.movi(r, 0);
    else b.movf(r, 0.0f);
  }

  Reg lane8 = b.reg();
  b.shl(lane8, lane, 3);  // first element index of this lane's fragment slice

  // Loads one packed fragment register pair-slot; for the float variant the
  // two fp32 values are cast to fp16 before packing (cuBLAS mixed-precision).
  auto load_frag = [&](Reg frag, Reg mat_base, Reg r_origin, Reg c_origin,
                       Reg k_origin, bool row_major_r_is_row) {
    Reg er = b.reg(), ec = b.reg(), eidx = b.reg(), addr = b.reg(), h = b.reg();
    Reg tmp = b.reg();
    for (unsigned s = 0; s < 8; ++s) {
      b.iaddi(eidx, lane8, static_cast<std::int32_t>(s));
      b.shr(er, eidx, 4);
      b.landi(ec, eidx, 15);
      // element (er, ec) of the 16x16 tile; map into the matrix.
      Reg mrow = b.reg(), mcol = b.reg();
      if (row_major_r_is_row) {  // A tile: row = r_origin+er, col = k_origin+ec
        b.iadd(mrow, r_origin, er);
        b.iadd(mcol, k_origin, ec);
      } else {  // B tile: row = k_origin+er, col = c_origin+ec
        b.iadd(mrow, k_origin, er);
        b.iadd(mcol, c_origin, ec);
      }
      b.imad(tmp, mrow, n, mcol);
      b.addr_index(addr, mat_base, tmp, esz_in);
      if (half) {
        b.ldg(h, addr, 0, MemWidth::B16);
      } else {
        b.ldg(h, addr, 0, MemWidth::B32);
        b.f2h(h, h);
      }
      Reg dst{static_cast<std::uint8_t>(frag.index + (s >> 1))};
      if (s % 2 == 0) {
        b.mov(dst, h);
      } else {
        b.shl(h, h, 16);
        b.lor(dst, dst, h);
      }
      b.free(mrow);
      b.free(mcol);
    }
    b.free(er);
    b.free(ec);
    b.free(eidx);
    b.free(addr);
    b.free(h);
    b.free(tmp);
  };

  Reg kt = b.reg();
  Reg k0 = b.reg();
  b.for_range_static(kt, 0, static_cast<std::int32_t>(tiles_per_row), 1, [&] {
    b.shl(k0, kt, 4);
    load_frag(fa, a_base, row0, col0, k0, /*row_major_r_is_row=*/true);
    load_frag(fb, b_base, row0, col0, k0, /*row_major_r_is_row=*/false);
    if (half) b.hmma(facc, fa, fb, facc);
    else b.fmma(facc, fa, fb, facc);
  });

  // Store the accumulator fragment to C.
  {
    Reg eidx = b.reg(), er = b.reg(), ec = b.reg(), addr = b.reg(), tmp = b.reg();
    Reg mrow = b.reg(), mcol = b.reg(), h = b.reg();
    for (unsigned s = 0; s < 8; ++s) {
      b.iaddi(eidx, lane8, static_cast<std::int32_t>(s));
      b.shr(er, eidx, 4);
      b.landi(ec, eidx, 15);
      b.iadd(mrow, row0, er);
      b.iadd(mcol, col0, ec);
      b.imad(tmp, mrow, n, mcol);
      const unsigned esz_out = half ? 2 : 4;
      b.addr_index(addr, c_base, tmp, esz_out);
      if (half) {
        Reg src{static_cast<std::uint8_t>(facc.index + (s >> 1))};
        if (s % 2 == 0) {
          b.stg(addr, src, 0, MemWidth::B16);
        } else {
          b.shr(h, src, 16);
          b.stg(addr, h, 0, MemWidth::B16);
        }
      } else {
        b.stg(addr, Reg{static_cast<std::uint8_t>(facc.index + s)});
      }
    }
  }
  program_ = b.build();
  register_program(&program_);
}

void GemmMma::setup(sim::Device& dev) {
  // Same generator and range as Gemm, so the two paths consume identical
  // inputs for a given seed (cross-validated in tests).
  Rng rng(config_.input_seed);
  a_ = upload_matrix(dev, precision_, n_, rng);
  b_ = upload_matrix(dev, precision_, n_, rng);
  const std::uint32_t bytes = n_ * n_ * core::precision_bytes(precision_);
  c_ = dev.alloc(bytes);
  register_output(c_, bytes);
}

void GemmMma::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  const unsigned total_warps = (n_ / 16) * (n_ / 16);
  const unsigned warps_per_block = 2;
  const unsigned blocks = std::max(1u, total_warps / warps_per_block);
  sim::KernelLaunch kl{&program_, {blocks, 1}, {warps_per_block * 32, 1}, 0,
                       {a_, b_, c_, n_}};
  runner.launch(kl);
}

core::Workload::OutputGeometry GemmMma::output_geometry() const {
  OutputGeometry g = Workload::output_geometry();
  g.rows = n_;
  g.cols = n_;
  return g;
}

}  // namespace gpurel::kernels
