#include "kernels/yolo.hpp"

#include <cmath>
#include <stdexcept>

#include "common/fp16.hpp"
#include "common/rng.hpp"
#include "kernels/elem.hpp"

namespace gpurel::kernels {

using core::Precision;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {

unsigned log2u(unsigned v) {
  unsigned l = 0;
  while ((v >> l) != 1) ++l;
  return l;
}

}  // namespace

ConvNet::ConvNet(core::WorkloadConfig config, Precision precision,
                 std::string base_name, std::vector<ConvSpec> layers,
                 double score_tolerance, unsigned input_dim, unsigned classes)
    : Workload(std::move(config)),
      precision_(precision),
      base_(std::move(base_name)),
      layers_(std::move(layers)),
      tolerance_(score_tolerance),
      input_dim_(input_dim),
      classes_(classes) {
  if (precision_ == Precision::Int32 || precision_ == Precision::Double)
    throw std::invalid_argument("ConvNet: paper YOLO variants are H/F");
  if (layers_.empty() || layers_.back().out_ch != classes_)
    throw std::invalid_argument("ConvNet: last layer must emit `classes` channels");
  if ((input_dim_ & (input_dim_ - 1)) != 0)
    throw std::invalid_argument("ConvNet: input_dim must be a power of two");
}

std::unique_ptr<ConvNet> ConvNet::yolov2(core::WorkloadConfig config,
                                         Precision precision) {
  // Shallow, permissive: the less accurate network only miscounts as an SDC
  // when the predicted class actually changes (paper §VI: a less precise
  // CNN tolerates more incorrect results).
  const unsigned dim = config.scale >= 0.75 ? 16 : 8;
  return std::make_unique<ConvNet>(
      std::move(config), precision, "YOLOV2",
      std::vector<ConvSpec>{{3, 8, true}, {8, 12, false}, {12, 10, false}},
      /*score_tolerance=*/1e9, dim);
}

std::unique_ptr<ConvNet> ConvNet::yolov3(core::WorkloadConfig config,
                                         Precision precision) {
  const unsigned dim = config.scale >= 0.75 ? 16 : 8;
  return std::make_unique<ConvNet>(
      std::move(config), precision, "YOLOV3",
      std::vector<ConvSpec>{{3, 8, false},
                            {8, 8, true},
                            {8, 12, false},
                            {12, 16, false},
                            {16, 16, false},
                            {16, 10, false}},
      /*score_tolerance=*/0.005, dim);
}

unsigned ConvNet::layer_dim(unsigned layer) const {
  unsigned d = input_dim_;
  for (unsigned l = 0; l < layer; ++l)
    if (layers_[l].pool_after) d /= 2;
  return d;
}

void ConvNet::build_programs() {
  conv_.clear();
  pool_.clear();
  conv_.reserve(layers_.size());

  for (unsigned l = 0; l < layers_.size(); ++l) {
    const ConvSpec& spec = layers_[l];
    const unsigned D = layer_dim(l);
    const unsigned DL = log2u(D);
    KernelBuilder b(name() + ".conv" + std::to_string(l), config_.profile);
    ElemEmitter e(b, precision_);
    const unsigned esz = e.esz();

    Reg in = b.load_param(0), w = b.load_param(1), bias = b.load_param(2),
        out = b.load_param(3);
    // Each thread produces two horizontally adjacent outputs of one channel
    // (register blocking, like the library's real conv kernels): the loaded
    // input row is reused by both accumulators and each weight is loaded
    // once, keeping the dynamic mix FMA-dominated. Borders use replicate
    // padding (clamped coordinates), so no per-tap masking is needed.
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetpi(in_range, t,
             static_cast<std::int32_t>(spec.out_ch * D * D / 2), CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg oc = b.reg(), rem = b.reg(), y = b.reg(), xh = b.reg(), x = b.reg();
      b.shr(oc, t, 2 * DL - 1);
      b.landi(rem, t, static_cast<std::int32_t>(D * D / 2 - 1));
      b.shr(y, rem, DL - 1);
      b.landi(xh, rem, static_cast<std::int32_t>(D / 2 - 1));
      b.shl(x, xh, 1);  // left output column of the pair

      Elem acc0 = e.alloc(), acc1 = e.alloc(), wt = e.alloc();
      e.constant(acc0, 0.0);
      e.constant(acc1, 0.0);
      // Weight base address for this output channel: w + oc*in_ch*9*esz.
      Reg w_oc_addr = b.reg();
      {
        Reg w_oc = b.reg();
        b.imuli(w_oc, oc, static_cast<std::int32_t>(spec.in_ch * 9));
        b.addr_index(w_oc_addr, w, w_oc, esz);
        b.free(w_oc);
      }

      // Hoisted, clamped input addresses: 3 rows x 4 columns cover both
      // outputs' 3x3 windows; per (ic, row, col) the load is a single
      // immediate-offset LDG.
      Reg cell_addr[3][4];
      {
        Reg iy = b.reg(), ix = b.reg(), idx = b.reg();
        Reg zero_i = b.reg(), dm1 = b.reg();
        b.movi(zero_i, 0);
        b.movi(dm1, static_cast<std::int32_t>(D - 1));
        for (unsigned r = 0; r < 3; ++r) {
          b.iaddi(iy, y, static_cast<std::int32_t>(r) - 1);
          b.imnmx(iy, iy, zero_i, /*take_max=*/true);
          b.imnmx(iy, iy, dm1, /*take_max=*/false);
          for (unsigned c = 0; c < 4; ++c) {
            b.iaddi(ix, x, static_cast<std::int32_t>(c) - 1);
            b.imnmx(ix, ix, zero_i, /*take_max=*/true);
            b.imnmx(ix, ix, dm1, /*take_max=*/false);
            b.shl(idx, iy, DL);
            b.iadd(idx, idx, ix);
            cell_addr[r][c] = b.reg();
            b.addr_index(cell_addr[r][c], in, idx, esz);
          }
        }
        b.free(iy);
        b.free(ix);
        b.free(idx);
        b.free(zero_i);
        b.free(dm1);
      }

      for (unsigned ic = 0; ic < spec.in_ch; ++ic) {
        const auto plane = static_cast<std::int32_t>(ic * D * D * esz);
        for (unsigned r = 0; r < 3; ++r) {
          // Four input cells feed six FMAs (three taps per output).
          Elem row[4] = {e.alloc(), e.alloc(), e.alloc(), e.alloc()};
          for (unsigned c = 0; c < 4; ++c) e.load(row[c], cell_addr[r][c], plane);
          for (unsigned kx = 0; kx < 3; ++kx) {
            e.load(wt, w_oc_addr,
                   static_cast<std::int32_t>((ic * 9 + r * 3 + kx) * esz));
            e.mul_add(acc0, row[kx], wt, acc0);
            e.mul_add(acc1, row[kx + 1], wt, acc1);
          }
          for (auto& el : row) e.free(el);
        }
      }

      // Bias + leaky ReLU on both outputs.
      Elem bv = e.alloc(), leak = e.alloc(), k = e.alloc();
      Reg idx = b.reg(), addr = b.reg();
      Pred scratch = b.pred();
      b.addr_index(addr, bias, oc, esz);
      e.load(bv, addr);
      e.constant(k, 0.1);
      e.add(acc0, acc0, bv);
      e.mul(leak, acc0, k);
      e.maximum(acc0, acc0, leak, scratch);
      e.add(acc1, acc1, bv);
      e.mul(leak, acc1, k);
      e.maximum(acc1, acc1, leak, scratch);
      // Store out[oc*D*D + y*D + x] and the neighbour.
      b.shl(idx, y, DL);
      b.iadd(idx, idx, x);
      Reg ocdd = b.reg();
      b.imuli(ocdd, oc, static_cast<std::int32_t>(D * D));
      b.iadd(idx, idx, ocdd);
      b.addr_index(addr, out, idx, esz);
      e.store(addr, acc0);
      e.store(addr, acc1, static_cast<std::int32_t>(esz));
    });
    conv_.push_back(b.build(/*library_code=*/true));
  }
  for (auto& p : conv_) register_program(&p);

  // Pool programs (for layers with pool_after).
  for (unsigned l = 0; l < layers_.size(); ++l) {
    if (!layers_[l].pool_after) continue;
    const unsigned D = layer_dim(l);       // dim entering the pool = conv out dim
    const unsigned O = D / 2;
    const unsigned OL = log2u(O);
    const unsigned ch = layers_[l].out_ch;
    KernelBuilder b(name() + ".pool" + std::to_string(l), config_.profile);
    ElemEmitter e(b, precision_);
    const unsigned esz = e.esz();
    Reg in = b.load_param(0), out = b.load_param(1);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetpi(in_range, t, static_cast<std::int32_t>(ch * O * O), CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg c = b.reg(), rem = b.reg(), y = b.reg(), x = b.reg();
      b.shr(c, t, 2 * OL);
      b.landi(rem, t, static_cast<std::int32_t>(O * O - 1));
      b.shr(y, rem, OL);
      b.landi(x, rem, static_cast<std::int32_t>(O - 1));
      Reg iy = b.reg(), ix = b.reg(), idx = b.reg(), addr = b.reg();
      b.shl(iy, y, 1);
      b.shl(ix, x, 1);
      Elem m = e.alloc(), v = e.alloc();
      Pred scratch = b.pred();
      bool first = true;
      for (unsigned dy = 0; dy < 2; ++dy) {
        for (unsigned dx = 0; dx < 2; ++dx) {
          Reg yy = b.reg(), xx = b.reg();
          b.iaddi(yy, iy, static_cast<std::int32_t>(dy));
          b.iaddi(xx, ix, static_cast<std::int32_t>(dx));
          b.shl(idx, yy, log2u(D));
          b.iadd(idx, idx, xx);
          Reg cdd = b.reg();
          b.imuli(cdd, c, static_cast<std::int32_t>(D * D));
          b.iadd(idx, idx, cdd);
          b.addr_index(addr, in, idx, esz);
          if (first) {
            e.load(m, addr);
            first = false;
          } else {
            e.load(v, addr);
            e.maximum(m, m, v, scratch);
          }
          b.free(yy);
          b.free(xx);
          b.free(cdd);
        }
      }
      Reg oidx = b.reg(), coo = b.reg();
      b.shl(oidx, y, OL);
      b.iadd(oidx, oidx, x);
      b.imuli(coo, c, static_cast<std::int32_t>(O * O));
      b.iadd(oidx, oidx, coo);
      b.addr_index(addr, out, oidx, esz);
      e.store(addr, m);
    });
    pool_.push_back(b.build(/*library_code=*/true));
  }
  for (auto& p : pool_) register_program(&p);

  // Head: global average per class channel.
  {
    const unsigned D = layer_dim(static_cast<unsigned>(layers_.size()));
    KernelBuilder b(name() + ".head", config_.profile);
    ElemEmitter e(b, precision_);
    const unsigned esz = e.esz();
    Reg in = b.load_param(0), out = b.load_param(1);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetpi(in_range, t, static_cast<std::int32_t>(classes_), CmpOp::LT);
    b.if_then(in_range, [&] {
      Elem acc = e.alloc(), v = e.alloc(), k = e.alloc();
      e.constant(acc, 0.0);
      Reg base = b.reg(), addr = b.reg();
      b.imuli(base, t, static_cast<std::int32_t>(D * D));
      Reg i = b.reg();
      b.for_range_static(i, 0, static_cast<std::int32_t>(D * D), 1, [&] {
        Reg idx = b.reg();
        b.iadd(idx, base, i);
        b.addr_index(addr, in, idx, esz);
        e.load(v, addr);
        e.add(acc, acc, v);
        b.free(idx);
      });
      e.constant(k, 1.0 / (D * D));
      e.mul(acc, acc, k);
      b.addr_index(addr, out, t, esz);
      e.store(addr, acc);
    });
    head_ = b.build(/*library_code=*/true);
    register_program(&head_);
  }
}

void ConvNet::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  const unsigned esz = core::precision_bytes(precision_);

  weights_.clear();
  biases_.clear();
  unsigned max_act = 3 * input_dim_ * input_dim_;
  {
    for (unsigned l = 0; l < layers_.size(); ++l) {
      const unsigned D = layer_dim(l);
      max_act = std::max(max_act, layers_[l].out_ch * D * D);
    }
  }
  for (const ConvSpec& spec : layers_) {
    // Near-unit layer gain (as trained, normalized networks have): fault
    // perturbations neither explode nor die out across depth.
    const double wscale = 1.7 / std::sqrt(static_cast<double>(spec.in_ch) * 9.0);
    auto wbytes =
        pack_elements(precision_, static_cast<std::size_t>(spec.in_ch) *
                                      spec.out_ch * 9,
                      [&](std::size_t) { return rng.uniform(-wscale, wscale); });
    weights_.push_back(dev.alloc_copy<std::uint8_t>(wbytes));
    auto bbytes = pack_elements(precision_, spec.out_ch,
                                [&](std::size_t) { return rng.uniform(-0.1, 0.1); });
    biases_.push_back(dev.alloc_copy<std::uint8_t>(bbytes));
  }
  auto image = pack_elements(precision_,
                             static_cast<std::size_t>(3) * input_dim_ * input_dim_,
                             [&](std::size_t) { return rng.uniform(0.0, 1.0); });
  act_[0] = dev.alloc(max_act * esz);
  act_[1] = dev.alloc(max_act * esz);
  dev.memory().write_bytes(act_[0], image);
  scores_ = dev.alloc(classes_ * esz);
}

void ConvNet::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  unsigned cur = 0;
  unsigned pool_idx = 0;
  for (unsigned l = 0; l < layers_.size(); ++l) {
    const unsigned D = layer_dim(l);
    const unsigned total = layers_[l].out_ch * D * D / 2;  // 2 outputs/thread
    const unsigned blocks = (total + 63) / 64;
    sim::KernelLaunch conv{&conv_[l], {blocks, 1}, {64, 1}, 0,
                           {act_[cur], weights_[l], biases_[l], act_[1 - cur]}};
    if (!runner.launch(conv)) return;
    cur = 1 - cur;
    if (layers_[l].pool_after) {
      const unsigned O = D / 2;
      const unsigned ptotal = layers_[l].out_ch * O * O;
      sim::KernelLaunch pool{&pool_[pool_idx++], {(ptotal + 63) / 64, 1}, {64, 1},
                             0, {act_[cur], act_[1 - cur]}};
      if (!runner.launch(pool)) return;
      cur = 1 - cur;
    }
  }
  sim::KernelLaunch head{&head_, {1, 1}, {std::max(32u, classes_), 1}, 0,
                         {act_[cur], scores_}};
  runner.launch(head);
}

std::vector<float> ConvNet::read_scores(sim::Device& dev) const {
  std::vector<float> out(classes_);
  if (precision_ == Precision::Half) {
    const auto raw = dev.copy_out<std::uint16_t>(scores_, classes_);
    for (unsigned c = 0; c < classes_; ++c)
      out[c] = Half::from_bits(raw[c]).to_float();
  } else {
    out = dev.copy_out<float>(scores_, classes_);
  }
  return out;
}

void ConvNet::capture_golden(sim::Device& dev) {
  golden_scores_ = read_scores(dev);
}

bool ConvNet::verify(sim::Device& dev) {
  const std::vector<float> scores = read_scores(dev);
  // Classification-aware criterion: the output is wrong only if the argmax
  // changes or a score moves beyond the network's tolerance (paper: faults
  // that do not modify the classification result are not SDCs).
  std::size_t g_arg = 0, s_arg = 0;
  float g_max = golden_scores_[0];
  double span = 1e-6;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (std::isnan(scores[c]) || std::isinf(scores[c])) return false;
    if (golden_scores_[c] > golden_scores_[g_arg]) g_arg = c;
    if (scores[c] > scores[s_arg]) s_arg = c;
    g_max = std::max(g_max, std::fabs(golden_scores_[c]));
    span = std::max(span, static_cast<double>(std::fabs(golden_scores_[c])));
  }
  if (g_arg != s_arg) return false;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (std::fabs(scores[c] - golden_scores_[c]) > tolerance_ * span) return false;
  }
  return true;
}

}  // namespace gpurel::kernels
