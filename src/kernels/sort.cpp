#include "kernels/sort.hpp"

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace gpurel::kernels {

using isa::AtomOp;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr std::int32_t kSentinelMax = 0x7fffffff;
constexpr std::int32_t kSentinelMin = static_cast<std::int32_t>(0x80000000);
}  // namespace

// ---------------------------------------------------------------------------
// Mergesort
// ---------------------------------------------------------------------------

Mergesort::Mergesort(core::WorkloadConfig config, unsigned n)
    : Workload(std::move(config)), n_(n) {
  if (n_ == 0) {
    n_ = 256;
    while (n_ * 2 <= static_cast<unsigned>(4096 * config_.scale)) n_ *= 2;
  }
  if (n_ < 64 || (n_ & (n_ - 1)) != 0)
    throw std::invalid_argument("Mergesort: n must be a power of two >= 64");
  for (unsigned w = 1; w < n_; w <<= 1) ++passes_;
}

void Mergesort::build_programs() {
  KernelBuilder b("MERGESORT.pass", config_.profile);
  Reg src = b.load_param(0), dst = b.load_param(1);
  Reg width = b.load_param(2), n = b.load_param(3), threads = b.load_param(4);

  Reg t = b.global_tid_x();
  Pred in_range = b.pred();
  b.isetp(in_range, t, threads, CmpOp::LT);
  b.if_then(in_range, [&] {
    Reg two_w = b.reg();
    b.shl(two_w, width, 1);
    Reg lo1 = b.reg();
    b.imul(lo1, t, two_w);
    Reg end1 = b.reg(), end2 = b.reg();
    b.iadd(end1, lo1, width);
    b.iadd(end2, lo1, two_w);

    Reg i = b.reg(), j = b.reg(), o = b.reg();
    b.mov(i, lo1);
    b.mov(j, end1);
    b.mov(o, lo1);

    Reg nm1 = b.reg(), sent = b.reg();
    b.iaddi(nm1, n, -1);
    b.movi(sent, kSentinelMax);

    b.while_loop([&](Pred p) { b.isetp(p, o, end2, CmpOp::LT); },
                 [&] {
                   // Sentinel-guarded heads of both runs (clamped loads keep
                   // exhausted-run reads in bounds).
                   Reg ic = b.reg(), jc = b.reg(), addr = b.reg();
                   Reg v1 = b.reg(), v2 = b.reg();
                   b.imnmx(ic, i, nm1, /*take_max=*/false);
                   b.addr_index(addr, src, ic, 4);
                   b.ldg(v1, addr);
                   b.imnmx(jc, j, nm1, /*take_max=*/false);
                   b.addr_index(addr, src, jc, 4);
                   b.ldg(v2, addr);
                   Pred live1 = b.pred(), live2 = b.pred();
                   b.isetp(live1, i, end1, CmpOp::LT);
                   b.isetp(live2, j, end2, CmpOp::LT);
                   b.sel(v1, v1, sent, live1);
                   b.sel(v2, v2, sent, live2);
                   Pred take1 = b.pred();
                   b.isetp(take1, v1, v2, CmpOp::LE);
                   Reg val = b.reg();
                   b.sel(val, v1, v2, take1);
                   b.addr_index(addr, dst, o, 4);
                   b.stg(addr, val);
                   Reg one = b.reg(), zero = b.reg(), step = b.reg();
                   b.movi(one, 1);
                   b.movi(zero, 0);
                   b.sel(step, one, zero, take1);
                   b.iadd(i, i, step);
                   b.sel(step, zero, one, take1);
                   b.iadd(j, j, step);
                   b.iaddi(o, o, 1);
                   b.free(ic);
                   b.free(jc);
                   b.free(addr);
                   b.free(v1);
                   b.free(v2);
                   b.free(live1);
                   b.free(live2);
                   b.free(take1);
                   b.free(val);
                   b.free(one);
                   b.free(zero);
                   b.free(step);
                 });
  });
  merge_ = b.build();
  register_program(&merge_);
}

void Mergesort::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::int32_t> data(n_);
  for (auto& v : data)
    v = static_cast<std::int32_t>(rng.uniform_i64(-1000000, 1000000));
  buf_[0] = dev.alloc_copy<std::int32_t>(data);
  buf_[1] = dev.alloc(n_ * 4);
  register_output(buf_[passes_ % 2], n_ * 4);
}

void Mergesort::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  unsigned pass = 0;
  for (unsigned w = 1; w < n_; w <<= 1, ++pass) {
    const unsigned threads = n_ / (2 * w);
    const unsigned blocks = std::max(1u, threads / 64);
    sim::KernelLaunch kl{&merge_,
                         {blocks, 1},
                         {std::min(threads, 64u), 1},
                         0,
                         {buf_[pass % 2], buf_[(pass + 1) % 2], w, n_, threads}};
    if (!runner.launch(kl)) return;
  }
}

// ---------------------------------------------------------------------------
// Quicksort
// ---------------------------------------------------------------------------

Quicksort::Quicksort(core::WorkloadConfig config, unsigned n,
                     core::Stepping stepping)
    : Workload(std::move(config)), n_(n), stepping_(stepping) {
  if (n_ == 0)
    n_ = std::max(256u, static_cast<unsigned>(2048 * config_.scale) / 64 * 64);
  if (n_ < 128 || n_ % 64 != 0)
    throw std::invalid_argument("Quicksort: n must be 64-aligned and >= 128");
  // Device stepping sizes its fixed launch sequence and device tables from
  // n: segment-list capacity covers the worst legitimate round (every
  // partitionable segment, len > kSmall, pushes two children — at most
  // 2n/(kSmall+2) slots), the small table holds every possible >= 2-element
  // small segment, and the round count bounds the recursion depth of a
  // random-pivot sort with a generous margin (the fault-free prepare() run
  // throws loudly if it were ever too small).
  unsigned lg = 0;
  while ((1u << lg) < n_) ++lg;
  segcap_ = std::max(64u, n_ / 16);
  smallcap_ = n_ / 2;
  rounds_ = 3 * lg + 4;
}

namespace {

/// Insertion-sort the small segment segtab[seg] = (lo, hi) with one thread.
/// Shared by the host-stepped kernel (seg = global tid, range-checked by the
/// caller) and the device-stepped kernel (seg = strided loop counter); the
/// emission order matches the original host-only kernel exactly, so that
/// program stays byte-identical.
void emit_small_sort_one(KernelBuilder& b, Reg data, Reg segtab, Reg seg) {
  Reg two_t = b.reg(), addr = b.reg(), lo = b.reg(), hi = b.reg();
  b.shl(two_t, seg, 1);
  b.addr_index(addr, segtab, two_t, 4);
  b.ldg(lo, addr);
  b.ldg(hi, addr, 4);
  Reg i = b.reg();
  b.iaddi(i, lo, 1);
  Reg sent = b.reg();
  b.movi(sent, kSentinelMin);
  b.while_loop(
      [&](Pred p) { b.isetp(p, i, hi, CmpOp::LT); },
      [&] {
        Reg key = b.reg(), ka = b.reg();
        b.addr_index(ka, data, i, 4);
        b.ldg(key, ka);
        Reg j = b.reg();
        b.iaddi(j, i, -1);
        // while (j >= lo && data[j] > key): sentinel turns the exhausted
        // case into INT_MIN which never exceeds key.
        Reg w = b.reg(), jaddr = b.reg(), jc = b.reg();
        auto load_guarded = [&] {
          b.imnmx(jc, j, lo, /*take_max=*/true);
          b.addr_index(jaddr, data, jc, 4);
          b.ldg(w, jaddr);
          Pred livej = b.pred();
          b.isetp(livej, j, lo, CmpOp::GE);
          b.sel(w, w, sent, livej);
          b.free(livej);
        };
        load_guarded();
        b.while_loop(
            [&](Pred p) { b.isetp(p, w, key, CmpOp::GT); },
            [&] {
              // data[j+1] = data[j]; --j
              Reg j1 = b.reg(), da = b.reg();
              b.iaddi(j1, j, 1);
              b.addr_index(da, data, j1, 4);
              b.stg(da, w);
              b.iaddi(j, j, -1);
              load_guarded();
              b.free(j1);
              b.free(da);
            });
        Reg j1 = b.reg(), da = b.reg();
        b.iaddi(j1, j, 1);
        b.addr_index(da, data, j1, 4);
        b.stg(da, key);
        b.iaddi(i, i, 1);
        b.free(key);
        b.free(ka);
        b.free(j);
        b.free(w);
        b.free(jaddr);
        b.free(jc);
        b.free(j1);
        b.free(da);
      });
  b.free(two_t);
  b.free(addr);
  b.free(lo);
  b.free(hi);
  b.free(i);
  b.free(sent);
}

}  // namespace

void Quicksort::build_programs() {
  if (stepping_ == core::Stepping::Device) {
    build_device_programs();
    return;
  }
  // partition: scatter data[lo, hi-1) around `pivot` into scratch using two
  // atomic cursors (less-than grows from lo; rest fills down from hi-2).
  {
    KernelBuilder b("QUICKSORT.partition", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1), ctr = b.load_param(2);
    Reg lo = b.load_param(3), hi = b.load_param(4), pivot = b.load_param(5);
    Reg t = b.global_tid_x();
    Reg seg_len = b.reg();
    Reg minus1 = b.reg();
    b.movi(minus1, -1);
    b.iadd(seg_len, hi, minus1);
    Reg neg_lo = b.reg();
    b.imul(neg_lo, lo, minus1);
    b.iadd(seg_len, seg_len, neg_lo);  // hi - 1 - lo
    Pred in_range = b.pred();
    b.isetp(in_range, t, seg_len, CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg idx = b.reg(), addr = b.reg(), v = b.reg();
      b.iadd(idx, lo, t);
      b.addr_index(addr, data, idx, 4);
      b.ldg(v, addr);
      Pred less = b.pred();
      b.isetp(less, v, pivot, CmpOp::LT);
      Reg one = b.reg(), pos = b.reg(), out_idx = b.reg();
      b.movi(one, 1);
      b.if_then_else(
          less,
          [&] {
            b.atom(pos, ctr, one, AtomOp::Add, 0);
            b.iadd(out_idx, lo, pos);
          },
          [&] {
            b.atom(pos, ctr, one, AtomOp::Add, 4);
            // hi - 2 - pos
            Reg tmp = b.reg();
            b.iaddi(tmp, hi, -2);
            Reg neg_pos = b.reg();
            b.imul(neg_pos, pos, minus1);
            b.iadd(out_idx, tmp, neg_pos);
            b.free(tmp);
            b.free(neg_pos);
          });
      Reg oaddr = b.reg();
      b.addr_index(oaddr, scratch, out_idx, 4);
      b.stg(oaddr, v);
    });
    partition_ = b.build();
    register_program(&partition_);
  }
  // copyback: data[lo+t (+1 past the split)] = scratch[lo+t].
  {
    KernelBuilder b("QUICKSORT.copyback", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1);
    Reg lo = b.load_param(2), seg_len = b.load_param(3), lt = b.load_param(4);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetp(in_range, t, seg_len, CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg idx = b.reg(), addr = b.reg(), v = b.reg();
      b.iadd(idx, lo, t);
      b.addr_index(addr, scratch, idx, 4);
      b.ldg(v, addr);
      Pred past = b.pred();
      b.isetp(past, t, lt, CmpOp::GE);
      Reg shifted = b.reg();
      b.iaddi(shifted, idx, 1);
      Reg dst_idx = b.reg();
      b.sel(dst_idx, shifted, idx, past);
      b.addr_index(addr, data, dst_idx, 4);
      b.stg(addr, v);
    });
    copyback_ = b.build();
    register_program(&copyback_);
  }
  // small_sort: one thread insertion-sorts one small segment.
  {
    KernelBuilder b("QUICKSORT.small", config_.profile);
    Reg data = b.load_param(0), segtab = b.load_param(1), nsegs = b.load_param(2);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetp(in_range, t, nsegs, CmpOp::LT);
    b.if_then(in_range, [&] { emit_small_sort_one(b, data, segtab, t); });
    small_sort_ = b.build();
    register_program(&small_sort_);
  }
}

void Quicksort::build_device_programs() {
  // plan: classify every segment in this round's input list. Large segments
  // (len > kSmall) get their pivot cached and their scatter cursors reset;
  // small ones (len >= 2) are appended to the device-built small table;
  // empty and single-element ones are dropped. Out-of-bounds segments raise
  // the error flag. Thread 0 also zeroes the round's output-list count (the
  // list the previous round consumed; the finish kernel appends after this
  // launch completes).
  {
    KernelBuilder b("QUICKSORT.dplan", config_.profile);
    Reg segs_in = b.load_param(0), cnt_in = b.load_param(1);
    Reg data = b.load_param(2), pivots = b.load_param(3), ctrs = b.load_param(4);
    Reg smalltab = b.load_param(5), smallcnt = b.load_param(6);
    Reg cnt_out = b.load_param(7), err = b.load_param(8), n = b.load_param(9);

    Reg t = b.global_tid_x();
    Reg zero = b.reg();
    b.movi(zero, 0);
    Pred first = b.pred();
    b.isetpi(first, t, 0, CmpOp::EQ);
    b.if_then(first, [&] { b.stg(cnt_out, zero); });
    b.free(first);

    Reg cnt = b.reg(), cap = b.reg();
    b.ldg(cnt, cnt_in);
    b.movi(cap, static_cast<std::int32_t>(segcap_));
    b.imnmx(cnt, cnt, cap, /*take_max=*/false);  // overflowed list: clamp

    Reg one = b.reg();
    b.movi(one, 1);
    auto set_err = [&] { b.stg(err, one); };

    Reg s = b.reg();
    b.mov(s, t);
    b.while_loop(
        [&](Pred p) { b.isetp(p, s, cnt, CmpOp::LT); },
        [&] {
          Reg sa = b.reg(), lo = b.reg(), hi = b.reg();
          b.addr_index(sa, segs_in, s, 8);
          b.ldg(lo, sa);
          b.ldg(hi, sa, 4);
          Reg minus1 = b.reg(), neg_lo = b.reg(), len = b.reg();
          b.movi(minus1, -1);
          b.imul(neg_lo, lo, minus1);
          b.iadd(len, hi, neg_lo);
          // Bound checks mirror the host variant's pop-time checks; a
          // corrupt segment raises err (an InvalidAddress DUE on the host).
          Pred ok_lo = b.pred();
          b.isetpi(ok_lo, lo, 0, CmpOp::GE);
          b.if_then_else(
              ok_lo,
              [&] {
                Pred ok_ord = b.pred();
                b.isetp(ok_ord, hi, lo, CmpOp::GE);
                b.if_then_else(
                    ok_ord,
                    [&] {
                      Pred ok_hi = b.pred();
                      b.isetp(ok_hi, hi, n, CmpOp::LE);
                      b.if_then_else(
                          ok_hi,
                          [&] {
                            Pred big = b.pred();
                            b.isetpi(big, len,
                                     static_cast<std::int32_t>(kSmall),
                                     CmpOp::GT);
                            b.if_then_else(
                                big,
                                [&] {
                                  // pivot = data[hi - 1]; reset this slot's
                                  // scatter cursors.
                                  Reg him1 = b.reg(), pa = b.reg();
                                  Reg piv = b.reg();
                                  b.iaddi(him1, hi, -1);
                                  b.addr_index(pa, data, him1, 4);
                                  b.ldg(piv, pa);
                                  Reg va = b.reg(), ca = b.reg();
                                  b.addr_index(va, pivots, s, 4);
                                  b.stg(va, piv);
                                  b.addr_index(ca, ctrs, s, 8);
                                  b.stg(ca, zero);
                                  b.stg(ca, zero, 4);
                                  b.free(him1);
                                  b.free(pa);
                                  b.free(piv);
                                  b.free(va);
                                  b.free(ca);
                                },
                                [&] {
                                  Pred ge2 = b.pred();
                                  b.isetpi(ge2, len, 2, CmpOp::GE);
                                  b.if_then(ge2, [&] {
                                    // Append to the small-segment table.
                                    Reg pos = b.reg();
                                    b.atom(pos, smallcnt, one, AtomOp::Add, 0);
                                    Pred fit = b.pred();
                                    b.isetpi(
                                        fit, pos,
                                        static_cast<std::int32_t>(smallcap_),
                                        CmpOp::LT);
                                    b.if_then_else(
                                        fit,
                                        [&] {
                                          Reg ta = b.reg();
                                          b.addr_index(ta, smalltab, pos, 8);
                                          b.stg(ta, lo);
                                          b.stg(ta, hi, 4);
                                          b.free(ta);
                                        },
                                        set_err);
                                    b.free(fit);
                                    b.free(pos);
                                  });
                                  b.free(ge2);
                                });
                            b.free(big);
                          },
                          set_err);
                      b.free(ok_hi);
                    },
                    set_err);
                b.free(ok_ord);
              },
              set_err);
          b.free(ok_lo);
          b.free(sa);
          b.free(lo);
          b.free(hi);
          b.free(minus1);
          b.free(neg_lo);
          b.free(len);
          b.iaddi(s, s, 64);
        });
    dplan_ = b.build();
    register_program(&dplan_);
  }
  // scatter: partition every large segment around its cached pivot into
  // scratch, kScatterBlocks blocks striding over the segment slots and the
  // 64 threads of each block striding over the segment's elements. Same
  // two-cursor scheme as the host partition kernel, but cursors live in a
  // per-slot array so all segments partition in one launch.
  {
    KernelBuilder b("QUICKSORT.dscatter", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1), ctrs = b.load_param(2);
    Reg segs_in = b.load_param(3), cnt_in = b.load_param(4);
    Reg pivots = b.load_param(5), n = b.load_param(6);

    Reg cnt = b.reg(), cap = b.reg();
    b.ldg(cnt, cnt_in);
    b.movi(cap, static_cast<std::int32_t>(segcap_));
    b.imnmx(cnt, cnt, cap, /*take_max=*/false);
    Reg tid = b.tid_x();
    Reg one = b.reg(), minus1 = b.reg();
    b.movi(one, 1);
    b.movi(minus1, -1);

    Reg s = b.ctaid_x();
    b.while_loop(
        [&](Pred p) { b.isetp(p, s, cnt, CmpOp::LT); },
        [&] {
          Reg sa = b.reg(), lo = b.reg(), hi = b.reg();
          b.addr_index(sa, segs_in, s, 8);
          b.ldg(lo, sa);
          b.ldg(hi, sa, 4);
          Reg neg_lo = b.reg(), len = b.reg();
          b.imul(neg_lo, lo, minus1);
          b.iadd(len, hi, neg_lo);
          // Only well-formed large segments partition; plan already raised
          // err for the rest.
          Pred ok_lo = b.pred(), ok_ord = b.pred(), ok_hi = b.pred();
          Pred big = b.pred();
          b.isetpi(ok_lo, lo, 0, CmpOp::GE);
          b.if_then(ok_lo, [&] {
            b.isetp(ok_ord, hi, lo, CmpOp::GE);
            b.if_then(ok_ord, [&] {
              b.isetp(ok_hi, hi, n, CmpOp::LE);
              b.if_then(ok_hi, [&] {
                b.isetpi(big, len, static_cast<std::int32_t>(kSmall),
                         CmpOp::GT);
                b.if_then(big, [&] {
                  Reg pa = b.reg(), piv = b.reg(), ca = b.reg();
                  b.addr_index(pa, pivots, s, 4);
                  b.ldg(piv, pa);
                  b.addr_index(ca, ctrs, s, 8);
                  Reg i = b.reg(), end = b.reg();
                  b.iadd(i, lo, tid);
                  b.iaddi(end, hi, -1);
                  b.while_loop(
                      [&](Pred p) { b.isetp(p, i, end, CmpOp::LT); },
                      [&] {
                        Reg va = b.reg(), v = b.reg();
                        b.addr_index(va, data, i, 4);
                        b.ldg(v, va);
                        Pred less = b.pred();
                        b.isetp(less, v, piv, CmpOp::LT);
                        Reg pos = b.reg(), out_idx = b.reg();
                        b.if_then_else(
                            less,
                            [&] {
                              b.atom(pos, ca, one, AtomOp::Add, 0);
                              b.iadd(out_idx, lo, pos);
                            },
                            [&] {
                              b.atom(pos, ca, one, AtomOp::Add, 4);
                              // hi - 2 - pos
                              Reg tmp = b.reg(), neg_pos = b.reg();
                              b.iaddi(tmp, hi, -2);
                              b.imul(neg_pos, pos, minus1);
                              b.iadd(out_idx, tmp, neg_pos);
                              b.free(tmp);
                              b.free(neg_pos);
                            });
                        Reg oa = b.reg();
                        b.addr_index(oa, scratch, out_idx, 4);
                        b.stg(oa, v);
                        b.iaddi(i, i, 64);
                        b.free(va);
                        b.free(v);
                        b.free(less);
                        b.free(pos);
                        b.free(out_idx);
                        b.free(oa);
                      });
                  b.free(pa);
                  b.free(piv);
                  b.free(ca);
                  b.free(i);
                  b.free(end);
                });
              });
            });
          });
          b.free(ok_lo);
          b.free(ok_ord);
          b.free(ok_hi);
          b.free(big);
          b.free(sa);
          b.free(lo);
          b.free(hi);
          b.free(neg_lo);
          b.free(len);
          b.iaddi(s, s, static_cast<std::int32_t>(kScatterBlocks));
        });
    dscatter_ = b.build();
    register_program(&dscatter_);
  }
  // finish: copy each large segment back from scratch (shifting the >= side
  // one right, as the host copyback does), place the pivot at the split
  // point, and push both children onto the next round's list. A cursor that
  // escaped its segment raises err instead (the host variant's
  // InvalidAddress check).
  {
    KernelBuilder b("QUICKSORT.dfinish", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1), ctrs = b.load_param(2);
    Reg segs_in = b.load_param(3), cnt_in = b.load_param(4);
    Reg pivots = b.load_param(5), segs_out = b.load_param(6);
    Reg cnt_out = b.load_param(7), err = b.load_param(8), n = b.load_param(9);

    Reg cnt = b.reg(), cap = b.reg();
    b.ldg(cnt, cnt_in);
    b.movi(cap, static_cast<std::int32_t>(segcap_));
    b.imnmx(cnt, cnt, cap, /*take_max=*/false);
    Reg tid = b.tid_x();
    Reg one = b.reg(), minus1 = b.reg();
    b.movi(one, 1);
    b.movi(minus1, -1);
    auto set_err = [&] { b.stg(err, one); };

    Reg s = b.ctaid_x();
    b.while_loop(
        [&](Pred p) { b.isetp(p, s, cnt, CmpOp::LT); },
        [&] {
          Reg sa = b.reg(), lo = b.reg(), hi = b.reg();
          b.addr_index(sa, segs_in, s, 8);
          b.ldg(lo, sa);
          b.ldg(hi, sa, 4);
          Reg neg_lo = b.reg(), len = b.reg();
          b.imul(neg_lo, lo, minus1);
          b.iadd(len, hi, neg_lo);
          // Guard predicates are consumed by the entry branch of each region,
          // so they are freed at body entry — the nesting otherwise exceeds
          // the architectural predicate count.
          Pred ok_lo = b.pred();
          b.isetpi(ok_lo, lo, 0, CmpOp::GE);
          b.if_then(ok_lo, [&] {
            b.free(ok_lo);
            Pred ok_ord = b.pred();
            b.isetp(ok_ord, hi, lo, CmpOp::GE);
            b.if_then(ok_ord, [&] {
              b.free(ok_ord);
              Pred ok_hi = b.pred();
              b.isetp(ok_hi, hi, n, CmpOp::LE);
              b.if_then(ok_hi, [&] {
                b.free(ok_hi);
                Pred big = b.pred();
                b.isetpi(big, len, static_cast<std::int32_t>(kSmall),
                         CmpOp::GT);
                b.if_then(big, [&] {
                  b.free(big);
                  Reg ca = b.reg(), lt = b.reg(), seg_len = b.reg();
                  b.addr_index(ca, ctrs, s, 8);
                  b.ldg(lt, ca);
                  b.iaddi(seg_len, len, -1);
                  Pred lt_lo = b.pred();
                  b.isetpi(lt_lo, lt, 0, CmpOp::GE);
                  b.if_then_else(
                      lt_lo,
                      [&] {
                        b.free(lt_lo);
                        Pred lt_hi = b.pred();
                        b.isetp(lt_hi, lt, seg_len, CmpOp::LE);
                        b.if_then_else(
                            lt_hi,
                            [&] {
                              b.free(lt_hi);
                              Reg i = b.reg();
                              b.mov(i, tid);
                              b.while_loop(
                                  [&](Pred p) {
                                    b.isetp(p, i, seg_len, CmpOp::LT);
                                  },
                                  [&] {
                                    Reg src = b.reg(), va = b.reg();
                                    Reg v = b.reg();
                                    b.iadd(src, lo, i);
                                    b.addr_index(va, scratch, src, 4);
                                    b.ldg(v, va);
                                    Pred past = b.pred();
                                    b.isetp(past, i, lt, CmpOp::GE);
                                    Reg shifted = b.reg(), dst = b.reg();
                                    b.iaddi(shifted, src, 1);
                                    b.sel(dst, shifted, src, past);
                                    Reg da = b.reg();
                                    b.addr_index(da, data, dst, 4);
                                    b.stg(da, v);
                                    b.iaddi(i, i, 64);
                                    b.free(src);
                                    b.free(va);
                                    b.free(v);
                                    b.free(past);
                                    b.free(shifted);
                                    b.free(dst);
                                    b.free(da);
                                  });
                              b.free(i);
                              // Lane 0 places the pivot and pushes both
                              // children.
                              Pred lane0 = b.pred();
                              b.isetpi(lane0, tid, 0, CmpOp::EQ);
                              b.if_then(lane0, [&] {
                                Reg pva = b.reg(), piv = b.reg();
                                b.addr_index(pva, pivots, s, 4);
                                b.ldg(piv, pva);
                                Reg pidx = b.reg(), pa = b.reg();
                                b.iadd(pidx, lo, lt);
                                b.addr_index(pa, data, pidx, 4);
                                b.stg(pa, piv);
                                Reg two = b.reg(), pos = b.reg();
                                b.movi(two, 2);
                                b.atom(pos, cnt_out, two, AtomOp::Add, 0);
                                Pred fit = b.pred();
                                b.isetpi(
                                    fit, pos,
                                    static_cast<std::int32_t>(segcap_) - 2,
                                    CmpOp::LE);
                                b.if_then_else(
                                    fit,
                                    [&] {
                                      Reg oa = b.reg(), c2lo = b.reg();
                                      b.addr_index(oa, segs_out, pos, 8);
                                      b.stg(oa, lo);
                                      b.stg(oa, pidx, 4);
                                      b.iaddi(c2lo, pidx, 1);
                                      b.stg(oa, c2lo, 8);
                                      b.stg(oa, hi, 12);
                                      b.free(oa);
                                      b.free(c2lo);
                                    },
                                    set_err);
                                b.free(fit);
                                b.free(pva);
                                b.free(piv);
                                b.free(pidx);
                                b.free(pa);
                                b.free(two);
                                b.free(pos);
                              });
                              b.free(lane0);
                            },
                            set_err);
                      },
                      set_err);
                  b.free(ca);
                  b.free(lt);
                  b.free(seg_len);
                });
              });
            });
          });
          b.free(sa);
          b.free(lo);
          b.free(hi);
          b.free(neg_lo);
          b.free(len);
          b.iaddi(s, s, static_cast<std::int32_t>(kScatterBlocks));
        });
    dfinish_ = b.build();
    register_program(&dfinish_);
  }
  // dsmall: grid-strided version of the host small-sort kernel, reading the
  // segment count from the device-built table instead of a launch param.
  {
    KernelBuilder b("QUICKSORT.dsmall", config_.profile);
    Reg data = b.load_param(0), segtab = b.load_param(1);
    Reg nsegs_addr = b.load_param(2);
    Reg nsegs = b.reg(), cap = b.reg();
    b.ldg(nsegs, nsegs_addr);
    b.movi(cap, static_cast<std::int32_t>(smallcap_));
    b.imnmx(nsegs, nsegs, cap, /*take_max=*/false);
    Reg t = b.global_tid_x();
    Reg ntid = b.ntid_x(), nct = b.nctaid_x();
    Reg stride = b.reg();
    b.imul(stride, ntid, nct);
    Reg s = b.reg();
    b.mov(s, t);
    b.while_loop(
        [&](Pred p) { b.isetp(p, s, nsegs, CmpOp::LT); },
        [&] {
          emit_small_sort_one(b, data, segtab, s);
          b.iadd(s, s, stride);
        });
    small_sort_ = b.build();
    register_program(&small_sort_);
  }
}

void Quicksort::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::int32_t> data(n_);
  for (auto& v : data)
    v = static_cast<std::int32_t>(rng.uniform_i64(-1000000, 1000000));
  data_ = dev.alloc_copy<std::int32_t>(data);
  scratch_ = dev.alloc(n_ * 4);
  if (stepping_ == core::Stepping::Host) {
    counters_ = dev.alloc(8);
    segtab_ = dev.alloc(n_ * 8);
    register_output(data_, n_ * 4);
    return;
  }
  // Device stepping: ping-ponged segment lists seeded with [0, n), per-slot
  // scatter cursors, a pivot cache, the device-built small-segment table,
  // and the error flag. Fresh allocations are zeroed, so only the seed
  // segment and its count need explicit writes.
  counters_ = dev.alloc(segcap_ * 8);
  segs_[0] = dev.alloc(segcap_ * 8);
  segs_[1] = dev.alloc(segcap_ * 8);
  cnts_ = dev.alloc(8);
  pivots_ = dev.alloc(segcap_ * 4);
  segtab_ = dev.alloc(smallcap_ * 8);
  smallcnt_ = dev.alloc(4);
  err_ = dev.alloc(4);
  dev.memory().write_u32(segs_[0] + 4, n_);
  dev.memory().write_u32(cnts_, 1);
  register_output(data_, n_ * 4);
}

void Quicksort::execute(sim::Device& dev, core::TrialRunner& runner) {
  if (stepping_ == core::Stepping::Device) {
    execute_device(dev, runner);
    return;
  }
  std::vector<std::pair<unsigned, unsigned>> stack{{0, n_}};
  std::vector<std::pair<unsigned, unsigned>> small_segs;
  unsigned iterations = 0;
  const unsigned max_iterations = 8 * n_;

  while (!stack.empty()) {
    if (++iterations > max_iterations) {
      runner.force_due(sim::DueKind::Watchdog);
      return;
    }
    auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi == lo) continue;       // empty side of a degenerate split
    if (hi < lo || hi > n_) {     // host-visible corruption
      runner.force_due(sim::DueKind::InvalidAddress);
      return;
    }
    if (hi - lo <= kSmall) {
      if (hi - lo >= 2) small_segs.emplace_back(lo, hi);
      continue;
    }
    // Host reads the pivot (cudaMemcpy equivalent) and resets the cursors.
    const std::uint32_t pivot = dev.memory().read_u32(data_ + (hi - 1) * 4);
    dev.memory().write_u32(counters_, 0);
    dev.memory().write_u32(counters_ + 4, 0);

    const unsigned seg_len = hi - lo - 1;
    const unsigned blocks = (seg_len + 63) / 64;
    sim::KernelLaunch part{&partition_, {blocks, 1}, {64, 1}, 0,
                           {data_, scratch_, counters_, lo, hi, pivot}};
    if (!runner.launch(part)) return;

    const std::uint32_t lt = dev.memory().read_u32(counters_);
    if (lt > seg_len) {  // corrupted cursor escaped the segment
      runner.force_due(sim::DueKind::InvalidAddress);
      return;
    }
    sim::KernelLaunch copy{&copyback_, {blocks, 1}, {64, 1}, 0,
                           {data_, scratch_, lo, seg_len, lt}};
    if (!runner.launch(copy)) return;
    dev.memory().write_u32(data_ + (lo + lt) * 4, pivot);

    stack.emplace_back(lo, lo + lt);
    stack.emplace_back(lo + lt + 1, hi);
  }

  if (small_segs.empty()) return;
  std::vector<std::uint32_t> table;
  table.reserve(small_segs.size() * 2);
  for (auto [lo, hi] : small_segs) {
    table.push_back(lo);
    table.push_back(hi);
  }
  dev.copy_in<std::uint32_t>(segtab_, table);
  const auto nsegs = static_cast<unsigned>(small_segs.size());
  sim::KernelLaunch fin{&small_sort_, {(nsegs + 31) / 32, 1}, {32, 1}, 0,
                        {data_, segtab_, nsegs}};
  runner.launch(fin);
}

void Quicksort::execute_device(sim::Device& dev, core::TrialRunner& runner) {
  // Fixed launch sequence: rounds_ breadth-first partition rounds over the
  // ping-ponged segment lists, then one sweep over the accumulated small
  // table. The host reads device state only after the last launch, so the
  // workload is fork-safe.
  for (unsigned r = 0; r < rounds_; ++r) {
    const std::uint32_t in = segs_[r % 2], out = segs_[(r + 1) % 2];
    const std::uint32_t cin = cnts_ + (r % 2) * 4;
    const std::uint32_t cout = cnts_ + ((r + 1) % 2) * 4;
    sim::KernelLaunch plan{&dplan_,
                           {1, 1},
                           {64, 1},
                           0,
                           {in, cin, data_, pivots_, counters_, segtab_,
                            smallcnt_, cout, err_, n_}};
    if (!runner.launch(plan)) return;
    sim::KernelLaunch scat{&dscatter_,
                           {kScatterBlocks, 1},
                           {64, 1},
                           0,
                           {data_, scratch_, counters_, in, cin, pivots_, n_}};
    if (!runner.launch(scat)) return;
    sim::KernelLaunch fin{&dfinish_,
                          {kScatterBlocks, 1},
                          {64, 1},
                          0,
                          {data_, scratch_, counters_, in, cin, pivots_, out,
                           cout, err_, n_}};
    if (!runner.launch(fin)) return;
  }
  sim::KernelLaunch small{
      &small_sort_, {2, 1}, {64, 1}, 0, {data_, segtab_, smallcnt_}};
  if (!runner.launch(small)) return;
  if (dev.memory().read_u32(err_) != 0) {
    runner.force_due(sim::DueKind::InvalidAddress);
    return;
  }
  // Segments left on the final list mean the fixed round budget did not
  // cover the recursion depth — the host variant's watchdog equivalent.
  if (dev.memory().read_u32(cnts_ + (rounds_ % 2) * 4) != 0)
    runner.force_due(sim::DueKind::Watchdog);
}

}  // namespace gpurel::kernels
