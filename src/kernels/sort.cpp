#include "kernels/sort.hpp"

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace gpurel::kernels {

using isa::AtomOp;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr std::int32_t kSentinelMax = 0x7fffffff;
constexpr std::int32_t kSentinelMin = static_cast<std::int32_t>(0x80000000);
}  // namespace

// ---------------------------------------------------------------------------
// Mergesort
// ---------------------------------------------------------------------------

Mergesort::Mergesort(core::WorkloadConfig config, unsigned n)
    : Workload(std::move(config)), n_(n) {
  if (n_ == 0) {
    n_ = 256;
    while (n_ * 2 <= static_cast<unsigned>(4096 * config_.scale)) n_ *= 2;
  }
  if (n_ < 64 || (n_ & (n_ - 1)) != 0)
    throw std::invalid_argument("Mergesort: n must be a power of two >= 64");
  for (unsigned w = 1; w < n_; w <<= 1) ++passes_;
}

void Mergesort::build_programs() {
  KernelBuilder b("MERGESORT.pass", config_.profile);
  Reg src = b.load_param(0), dst = b.load_param(1);
  Reg width = b.load_param(2), n = b.load_param(3), threads = b.load_param(4);

  Reg t = b.global_tid_x();
  Pred in_range = b.pred();
  b.isetp(in_range, t, threads, CmpOp::LT);
  b.if_then(in_range, [&] {
    Reg two_w = b.reg();
    b.shl(two_w, width, 1);
    Reg lo1 = b.reg();
    b.imul(lo1, t, two_w);
    Reg end1 = b.reg(), end2 = b.reg();
    b.iadd(end1, lo1, width);
    b.iadd(end2, lo1, two_w);

    Reg i = b.reg(), j = b.reg(), o = b.reg();
    b.mov(i, lo1);
    b.mov(j, end1);
    b.mov(o, lo1);

    Reg nm1 = b.reg(), sent = b.reg();
    b.iaddi(nm1, n, -1);
    b.movi(sent, kSentinelMax);

    b.while_loop([&](Pred p) { b.isetp(p, o, end2, CmpOp::LT); },
                 [&] {
                   // Sentinel-guarded heads of both runs (clamped loads keep
                   // exhausted-run reads in bounds).
                   Reg ic = b.reg(), jc = b.reg(), addr = b.reg();
                   Reg v1 = b.reg(), v2 = b.reg();
                   b.imnmx(ic, i, nm1, /*take_max=*/false);
                   b.addr_index(addr, src, ic, 4);
                   b.ldg(v1, addr);
                   b.imnmx(jc, j, nm1, /*take_max=*/false);
                   b.addr_index(addr, src, jc, 4);
                   b.ldg(v2, addr);
                   Pred live1 = b.pred(), live2 = b.pred();
                   b.isetp(live1, i, end1, CmpOp::LT);
                   b.isetp(live2, j, end2, CmpOp::LT);
                   b.sel(v1, v1, sent, live1);
                   b.sel(v2, v2, sent, live2);
                   Pred take1 = b.pred();
                   b.isetp(take1, v1, v2, CmpOp::LE);
                   Reg val = b.reg();
                   b.sel(val, v1, v2, take1);
                   b.addr_index(addr, dst, o, 4);
                   b.stg(addr, val);
                   Reg one = b.reg(), zero = b.reg(), step = b.reg();
                   b.movi(one, 1);
                   b.movi(zero, 0);
                   b.sel(step, one, zero, take1);
                   b.iadd(i, i, step);
                   b.sel(step, zero, one, take1);
                   b.iadd(j, j, step);
                   b.iaddi(o, o, 1);
                   b.free(ic);
                   b.free(jc);
                   b.free(addr);
                   b.free(v1);
                   b.free(v2);
                   b.free(live1);
                   b.free(live2);
                   b.free(take1);
                   b.free(val);
                   b.free(one);
                   b.free(zero);
                   b.free(step);
                 });
  });
  merge_ = b.build();
  register_program(&merge_);
}

void Mergesort::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::int32_t> data(n_);
  for (auto& v : data)
    v = static_cast<std::int32_t>(rng.uniform_i64(-1000000, 1000000));
  buf_[0] = dev.alloc_copy<std::int32_t>(data);
  buf_[1] = dev.alloc(n_ * 4);
  register_output(buf_[passes_ % 2], n_ * 4);
}

void Mergesort::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  unsigned pass = 0;
  for (unsigned w = 1; w < n_; w <<= 1, ++pass) {
    const unsigned threads = n_ / (2 * w);
    const unsigned blocks = std::max(1u, threads / 64);
    sim::KernelLaunch kl{&merge_,
                         {blocks, 1},
                         {std::min(threads, 64u), 1},
                         0,
                         {buf_[pass % 2], buf_[(pass + 1) % 2], w, n_, threads}};
    if (!runner.launch(kl)) return;
  }
}

// ---------------------------------------------------------------------------
// Quicksort
// ---------------------------------------------------------------------------

Quicksort::Quicksort(core::WorkloadConfig config, unsigned n)
    : Workload(std::move(config)), n_(n) {
  if (n_ == 0)
    n_ = std::max(256u, static_cast<unsigned>(2048 * config_.scale) / 64 * 64);
  if (n_ < 128 || n_ % 64 != 0)
    throw std::invalid_argument("Quicksort: n must be 64-aligned and >= 128");
}

void Quicksort::build_programs() {
  // partition: scatter data[lo, hi-1) around `pivot` into scratch using two
  // atomic cursors (less-than grows from lo; rest fills down from hi-2).
  {
    KernelBuilder b("QUICKSORT.partition", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1), ctr = b.load_param(2);
    Reg lo = b.load_param(3), hi = b.load_param(4), pivot = b.load_param(5);
    Reg t = b.global_tid_x();
    Reg seg_len = b.reg();
    Reg minus1 = b.reg();
    b.movi(minus1, -1);
    b.iadd(seg_len, hi, minus1);
    Reg neg_lo = b.reg();
    b.imul(neg_lo, lo, minus1);
    b.iadd(seg_len, seg_len, neg_lo);  // hi - 1 - lo
    Pred in_range = b.pred();
    b.isetp(in_range, t, seg_len, CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg idx = b.reg(), addr = b.reg(), v = b.reg();
      b.iadd(idx, lo, t);
      b.addr_index(addr, data, idx, 4);
      b.ldg(v, addr);
      Pred less = b.pred();
      b.isetp(less, v, pivot, CmpOp::LT);
      Reg one = b.reg(), pos = b.reg(), out_idx = b.reg();
      b.movi(one, 1);
      b.if_then_else(
          less,
          [&] {
            b.atom(pos, ctr, one, AtomOp::Add, 0);
            b.iadd(out_idx, lo, pos);
          },
          [&] {
            b.atom(pos, ctr, one, AtomOp::Add, 4);
            // hi - 2 - pos
            Reg tmp = b.reg();
            b.iaddi(tmp, hi, -2);
            Reg neg_pos = b.reg();
            b.imul(neg_pos, pos, minus1);
            b.iadd(out_idx, tmp, neg_pos);
            b.free(tmp);
            b.free(neg_pos);
          });
      Reg oaddr = b.reg();
      b.addr_index(oaddr, scratch, out_idx, 4);
      b.stg(oaddr, v);
    });
    partition_ = b.build();
    register_program(&partition_);
  }
  // copyback: data[lo+t (+1 past the split)] = scratch[lo+t].
  {
    KernelBuilder b("QUICKSORT.copyback", config_.profile);
    Reg data = b.load_param(0), scratch = b.load_param(1);
    Reg lo = b.load_param(2), seg_len = b.load_param(3), lt = b.load_param(4);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetp(in_range, t, seg_len, CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg idx = b.reg(), addr = b.reg(), v = b.reg();
      b.iadd(idx, lo, t);
      b.addr_index(addr, scratch, idx, 4);
      b.ldg(v, addr);
      Pred past = b.pred();
      b.isetp(past, t, lt, CmpOp::GE);
      Reg shifted = b.reg();
      b.iaddi(shifted, idx, 1);
      Reg dst_idx = b.reg();
      b.sel(dst_idx, shifted, idx, past);
      b.addr_index(addr, data, dst_idx, 4);
      b.stg(addr, v);
    });
    copyback_ = b.build();
    register_program(&copyback_);
  }
  // small_sort: one thread insertion-sorts one small segment.
  {
    KernelBuilder b("QUICKSORT.small", config_.profile);
    Reg data = b.load_param(0), segtab = b.load_param(1), nsegs = b.load_param(2);
    Reg t = b.global_tid_x();
    Pred in_range = b.pred();
    b.isetp(in_range, t, nsegs, CmpOp::LT);
    b.if_then(in_range, [&] {
      Reg two_t = b.reg(), addr = b.reg(), lo = b.reg(), hi = b.reg();
      b.shl(two_t, t, 1);
      b.addr_index(addr, segtab, two_t, 4);
      b.ldg(lo, addr);
      b.ldg(hi, addr, 4);
      Reg i = b.reg();
      b.iaddi(i, lo, 1);
      Reg sent = b.reg();
      b.movi(sent, kSentinelMin);
      b.while_loop(
          [&](Pred p) { b.isetp(p, i, hi, CmpOp::LT); },
          [&] {
            Reg key = b.reg(), ka = b.reg();
            b.addr_index(ka, data, i, 4);
            b.ldg(key, ka);
            Reg j = b.reg();
            b.iaddi(j, i, -1);
            // while (j >= lo && data[j] > key): sentinel turns the exhausted
            // case into INT_MIN which never exceeds key.
            Reg w = b.reg(), jaddr = b.reg(), jc = b.reg();
            auto load_guarded = [&] {
              b.imnmx(jc, j, lo, /*take_max=*/true);
              b.addr_index(jaddr, data, jc, 4);
              b.ldg(w, jaddr);
              Pred livej = b.pred();
              b.isetp(livej, j, lo, CmpOp::GE);
              b.sel(w, w, sent, livej);
              b.free(livej);
            };
            load_guarded();
            b.while_loop(
                [&](Pred p) { b.isetp(p, w, key, CmpOp::GT); },
                [&] {
                  // data[j+1] = data[j]; --j
                  Reg j1 = b.reg(), da = b.reg();
                  b.iaddi(j1, j, 1);
                  b.addr_index(da, data, j1, 4);
                  b.stg(da, w);
                  b.iaddi(j, j, -1);
                  load_guarded();
                  b.free(j1);
                  b.free(da);
                });
            Reg j1 = b.reg(), da = b.reg();
            b.iaddi(j1, j, 1);
            b.addr_index(da, data, j1, 4);
            b.stg(da, key);
            b.iaddi(i, i, 1);
            b.free(key);
            b.free(ka);
            b.free(j);
            b.free(w);
            b.free(jaddr);
            b.free(jc);
            b.free(j1);
            b.free(da);
          });
    });
    small_sort_ = b.build();
    register_program(&small_sort_);
  }
}

void Quicksort::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::int32_t> data(n_);
  for (auto& v : data)
    v = static_cast<std::int32_t>(rng.uniform_i64(-1000000, 1000000));
  data_ = dev.alloc_copy<std::int32_t>(data);
  scratch_ = dev.alloc(n_ * 4);
  counters_ = dev.alloc(8);
  segtab_ = dev.alloc(n_ * 8);
  register_output(data_, n_ * 4);
}

void Quicksort::execute(sim::Device& dev, core::TrialRunner& runner) {
  constexpr unsigned kSmall = 32;
  std::vector<std::pair<unsigned, unsigned>> stack{{0, n_}};
  std::vector<std::pair<unsigned, unsigned>> small_segs;
  unsigned iterations = 0;
  const unsigned max_iterations = 8 * n_;

  while (!stack.empty()) {
    if (++iterations > max_iterations) {
      runner.force_due(sim::DueKind::Watchdog);
      return;
    }
    auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi == lo) continue;       // empty side of a degenerate split
    if (hi < lo || hi > n_) {     // host-visible corruption
      runner.force_due(sim::DueKind::InvalidAddress);
      return;
    }
    if (hi - lo <= kSmall) {
      if (hi - lo >= 2) small_segs.emplace_back(lo, hi);
      continue;
    }
    // Host reads the pivot (cudaMemcpy equivalent) and resets the cursors.
    const std::uint32_t pivot = dev.memory().read_u32(data_ + (hi - 1) * 4);
    dev.memory().write_u32(counters_, 0);
    dev.memory().write_u32(counters_ + 4, 0);

    const unsigned seg_len = hi - lo - 1;
    const unsigned blocks = (seg_len + 63) / 64;
    sim::KernelLaunch part{&partition_, {blocks, 1}, {64, 1}, 0,
                           {data_, scratch_, counters_, lo, hi, pivot}};
    if (!runner.launch(part)) return;

    const std::uint32_t lt = dev.memory().read_u32(counters_);
    if (lt > seg_len) {  // corrupted cursor escaped the segment
      runner.force_due(sim::DueKind::InvalidAddress);
      return;
    }
    sim::KernelLaunch copy{&copyback_, {blocks, 1}, {64, 1}, 0,
                           {data_, scratch_, lo, seg_len, lt}};
    if (!runner.launch(copy)) return;
    dev.memory().write_u32(data_ + (lo + lt) * 4, pivot);

    stack.emplace_back(lo, lo + lt);
    stack.emplace_back(lo + lt + 1, hi);
  }

  if (small_segs.empty()) return;
  std::vector<std::uint32_t> table;
  table.reserve(small_segs.size() * 2);
  for (auto [lo, hi] : small_segs) {
    table.push_back(lo);
    table.push_back(hi);
  }
  dev.copy_in<std::uint32_t>(segtab_, table);
  const auto nsegs = static_cast<unsigned>(small_segs.size());
  sim::KernelLaunch fin{&small_sort_, {(nsegs + 31) / 32, 1}, {32, 1}, 0,
                        {data_, segtab_, nsegs}};
  runner.launch(fin);
}

}  // namespace gpurel::kernels
