#include "kernels/registry.hpp"

#include <stdexcept>

#include "kernels/graph.hpp"
#include "kernels/linalg.hpp"
#include "kernels/matmul.hpp"
#include "kernels/microbench.hpp"
#include "kernels/sort.hpp"
#include "kernels/stencil.hpp"
#include "kernels/yolo.hpp"

namespace gpurel::kernels {

using core::Precision;

std::unique_ptr<core::Workload> make_workload(const std::string& base,
                                              Precision precision,
                                              core::WorkloadConfig config) {
  if (base == "MXM") return std::make_unique<MxM>(std::move(config), precision);
  if (base == "GEMM") return std::make_unique<Gemm>(std::move(config), precision);
  if (base == "GEMM-MMA")
    return std::make_unique<GemmMma>(std::move(config), precision);
  if (base == "HOTSPOT")
    return std::make_unique<Hotspot>(std::move(config), precision);
  if (base == "LAVA") return std::make_unique<Lava>(std::move(config), precision);
  if (base == "GAUSSIAN") return std::make_unique<Gaussian>(std::move(config));
  if (base == "LUD") return std::make_unique<Lud>(std::move(config));
  if (base == "NW") return std::make_unique<Nw>(std::move(config));
  if (base == "BFS") return std::make_unique<Bfs>(std::move(config));
  if (base == "CCL") return std::make_unique<Ccl>(std::move(config));
  if (base == "MERGESORT") return std::make_unique<Mergesort>(std::move(config));
  if (base == "QUICKSORT") return std::make_unique<Quicksort>(std::move(config));
  // Device-stepped (fork-safe) variants of the iterative codes. Not part of
  // the beam catalogs — the host-stepped shapes match the paper's setup —
  // but first-class for checkpoint-fork campaign batching.
  if (base == "BFS-DEV")
    return std::make_unique<Bfs>(std::move(config), 0, 4,
                                 core::Stepping::Device);
  if (base == "CCL-DEV")
    return std::make_unique<Ccl>(std::move(config), 16,
                                 core::Stepping::Device);
  if (base == "QUICKSORT-DEV")
    return std::make_unique<Quicksort>(std::move(config), 0,
                                       core::Stepping::Device);
  if (base == "YOLOV2") return ConvNet::yolov2(std::move(config), precision);
  if (base == "YOLOV3") return ConvNet::yolov3(std::move(config), precision);
  if (base == "ADD")
    return std::make_unique<ArithMicro>(std::move(config), precision, MicroOp::Add);
  if (base == "MUL")
    return std::make_unique<ArithMicro>(std::move(config), precision, MicroOp::Mul);
  if (base == "FMA" || base == "MAD")
    return std::make_unique<ArithMicro>(std::move(config), precision, MicroOp::Fma);
  if (base == "LDST") return std::make_unique<LdstMicro>(std::move(config));
  if (base == "RF") return std::make_unique<RfMicro>(std::move(config));
  if (base == "MMA")
    return std::make_unique<MmaMicro>(std::move(config), precision);
  throw std::invalid_argument("make_workload: unknown workload '" + base + "'");
}

core::WorkloadFactory workload_factory(std::string base, Precision precision,
                                       core::WorkloadConfig config) {
  return [base = std::move(base), precision, config] {
    return make_workload(base, precision, config);
  };
}

std::vector<CatalogEntry> kepler_app_catalog() {
  return {
      {"CCL", Precision::Int32},     {"BFS", Precision::Int32},
      {"LAVA", Precision::Single},   {"HOTSPOT", Precision::Single},
      {"GAUSSIAN", Precision::Single}, {"LUD", Precision::Single},
      {"NW", Precision::Int32},      {"MXM", Precision::Single},
      {"GEMM", Precision::Single},   {"MERGESORT", Precision::Int32},
      {"QUICKSORT", Precision::Int32}, {"YOLOV2", Precision::Single},
      {"YOLOV3", Precision::Single},
  };
}

std::vector<CatalogEntry> volta_app_catalog() {
  return {
      {"LAVA", Precision::Half},     {"LAVA", Precision::Single},
      {"LAVA", Precision::Double},   {"HOTSPOT", Precision::Half},
      {"HOTSPOT", Precision::Single}, {"HOTSPOT", Precision::Double},
      {"MXM", Precision::Half},      {"MXM", Precision::Single},
      {"MXM", Precision::Double},    {"GEMM", Precision::Half},
      {"GEMM", Precision::Single},   {"GEMM", Precision::Double},
      {"GEMM-MMA", Precision::Half}, {"GEMM-MMA", Precision::Single},
      {"YOLOV3", Precision::Half},   {"YOLOV3", Precision::Single},
  };
}

std::vector<CatalogEntry> kepler_micro_catalog() {
  return {
      {"ADD", Precision::Single},  {"MUL", Precision::Single},
      {"FMA", Precision::Single},  {"ADD", Precision::Int32},
      {"MUL", Precision::Int32},   {"MAD", Precision::Int32},
      {"LDST", Precision::Int32},  {"RF", Precision::Int32},
  };
}

std::vector<CatalogEntry> volta_micro_catalog() {
  return {
      {"ADD", Precision::Half},    {"MUL", Precision::Half},
      {"FMA", Precision::Half},    {"ADD", Precision::Single},
      {"MUL", Precision::Single},  {"FMA", Precision::Single},
      {"ADD", Precision::Double},  {"MUL", Precision::Double},
      {"FMA", Precision::Double},  {"ADD", Precision::Int32},
      {"MUL", Precision::Int32},   {"MAD", Precision::Int32},
      {"MMA", Precision::Half},    {"MMA", Precision::Single},
      {"RF", Precision::Int32},
  };
}

std::string entry_name(const CatalogEntry& e) {
  // Reuse the workloads' own naming (integer microbenchmarks prefix "I").
  if (e.base == "ADD" || e.base == "MUL" || e.base == "FMA" || e.base == "MAD") {
    const std::string_view prefix =
        e.precision == Precision::Int32 ? "I" : core::precision_prefix(e.precision);
    const std::string b = e.base == "MAD" ? "MAD" : e.base;
    return std::string(prefix) + b;
  }
  return std::string(core::precision_prefix(e.precision)) + e.base;
}

}  // namespace gpurel::kernels
