// Central factory for every workload in the study, plus the per-device
// catalogs mirroring the paper's Table I (application codes) and Fig. 3
// (microbenchmarks).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace gpurel::kernels {

/// Instantiate a workload by base name ("MXM", "GEMM", "GEMM-MMA", "HOTSPOT",
/// "LAVA", "GAUSSIAN", "LUD", "NW", "BFS", "CCL", "MERGESORT", "QUICKSORT",
/// "YOLOV2", "YOLOV3", and microbenchmarks "ADD", "MUL", "FMA", "MAD",
/// "LDST", "RF", "MMA"). Throws std::invalid_argument for unknown names or
/// unsupported precision/device combinations.
std::unique_ptr<core::Workload> make_workload(const std::string& base,
                                              core::Precision precision,
                                              core::WorkloadConfig config);

/// A factory that repeatedly builds the same workload (for campaigns).
core::WorkloadFactory workload_factory(std::string base, core::Precision precision,
                                       core::WorkloadConfig config);

struct CatalogEntry {
  std::string base;
  core::Precision precision;
};

/// Application codes tested on the Kepler K40c (Table I, left).
std::vector<CatalogEntry> kepler_app_catalog();
/// Application codes tested on the Volta V100 (Table I, right).
std::vector<CatalogEntry> volta_app_catalog();
/// Microbenchmarks beam-tested on Kepler (Fig. 3, left).
std::vector<CatalogEntry> kepler_micro_catalog();
/// Microbenchmarks beam-tested on Volta (Fig. 3, right).
std::vector<CatalogEntry> volta_micro_catalog();

/// Display name for an entry ("FMXM", "HGEMM-MMA", "QUICKSORT", ...).
std::string entry_name(const CatalogEntry& e);

}  // namespace gpurel::kernels
