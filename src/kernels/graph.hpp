// Irregular integer workloads: frontier-based BFS (Rodinia-style, one kernel
// launch per level with host-managed frontier swap) and connected-component
// labeling by iterative label propagation (host loop until fixpoint). Both
// match the paper's profile for these codes: branchy integer code, poor
// memory access patterns, and under-utilized functional units.
//
// Both iterative codes come in two stepping variants (core::Stepping):
// host stepping polls the convergence flag between launches (the paper's
// Rodinia shape, but not fork-safe), device stepping chains one gate flag
// per iteration through device memory — launch k executes only when the
// previous launch set flags[k], and a fixed-length launch sequence ends in a
// single post-loop host read of the last flag — which makes the workload
// fork-safe for checkpoint-fork campaign batching. The host-stepped kernels
// and schedules are byte-identical to the pre-variant code.
#pragma once

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

class Bfs final : public core::Workload {
 public:
  Bfs(core::WorkloadConfig config, unsigned nodes = 0, unsigned degree = 4,
      core::Stepping stepping = core::Stepping::Host);

  std::string base_name() const override {
    return stepping_ == core::Stepping::Device ? "BFS-DEV" : "BFS";
  }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override {
    return stepping_ == core::Stepping::Device;
  }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  static constexpr unsigned kMaxLevels = 24;  // random graphs stay shallow

  unsigned nodes_;
  unsigned degree_;
  core::Stepping stepping_;
  isa::Program step_;
  std::uint32_t row_off_ = 0, col_ = 0, cost_ = 0;
  std::uint32_t frontier_[2] = {0, 0};
  std::uint32_t changed_ = 0;
  std::uint32_t flags_ = 0;  // device stepping: one gate flag per level
};

class Ccl final : public core::Workload {
 public:
  explicit Ccl(core::WorkloadConfig config, unsigned dim = 16,
               core::Stepping stepping = core::Stepping::Host);

  std::string base_name() const override {
    return stepping_ == core::Stepping::Device ? "CCL-DEV" : "CCL";
  }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override {
    return stepping_ == core::Stepping::Device;
  }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned dim_;       // image is dim x dim, dim a power of two
  unsigned dim_log2_;
  core::Stepping stepping_;
  isa::Program step_;
  std::uint32_t img_ = 0, labels_ = 0, changed_ = 0;
  std::uint32_t flags_ = 0;  // device stepping: one gate flag per iteration
};

/// Needleman–Wunsch sequence alignment: integer dynamic programming swept
/// one anti-diagonal per kernel launch (severely underutilized GPU, as the
/// paper's Table I occupancy/IPC for NW shows).
class Nw final : public core::Workload {
 public:
  explicit Nw(core::WorkloadConfig config, unsigned len = 0);

  std::string base_name() const override { return "NW"; }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override { return true; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned len_;
  isa::Program diag_;
  std::uint32_t score_ = 0, seqa_ = 0, seqb_ = 0;
};

}  // namespace gpurel::kernels
