// Irregular integer workloads: frontier-based BFS (Rodinia-style, one kernel
// launch per level with host-managed frontier swap) and connected-component
// labeling by iterative label propagation (host loop until fixpoint). Both
// match the paper's profile for these codes: branchy integer code, poor
// memory access patterns, and under-utilized functional units.
#pragma once

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

class Bfs final : public core::Workload {
 public:
  Bfs(core::WorkloadConfig config, unsigned nodes = 0, unsigned degree = 4);

  std::string base_name() const override { return "BFS"; }
  core::Precision precision() const override { return core::Precision::Int32; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned nodes_;
  unsigned degree_;
  isa::Program step_;
  std::uint32_t row_off_ = 0, col_ = 0, cost_ = 0;
  std::uint32_t frontier_[2] = {0, 0};
  std::uint32_t changed_ = 0;
};

class Ccl final : public core::Workload {
 public:
  explicit Ccl(core::WorkloadConfig config, unsigned dim = 16);

  std::string base_name() const override { return "CCL"; }
  core::Precision precision() const override { return core::Precision::Int32; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned dim_;       // image is dim x dim, dim a power of two
  unsigned dim_log2_;
  isa::Program step_;
  std::uint32_t img_ = 0, labels_ = 0, changed_ = 0;
};

/// Needleman–Wunsch sequence alignment: integer dynamic programming swept
/// one anti-diagonal per kernel launch (severely underutilized GPU, as the
/// paper's Table I occupancy/IPC for NW shows).
class Nw final : public core::Workload {
 public:
  explicit Nw(core::WorkloadConfig config, unsigned len = 0);

  std::string base_name() const override { return "NW"; }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override { return true; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned len_;
  isa::Program diag_;
  std::uint32_t score_ = 0, seqa_ = 0, seqb_ = 0;
};

}  // namespace gpurel::kernels
