// Hotspot (Rodinia): iterative 2D thermal simulation. One thread per cell,
// ping-pong temperature buffers, one kernel launch per time step. Runs the
// same kernel in half/single/double precision (Table I / §VI) with the
// paper's high-occupancy profile.
#pragma once

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

class Hotspot final : public core::Workload {
 public:
  Hotspot(core::WorkloadConfig config, core::Precision precision,
          unsigned grid_dim = 0, unsigned steps = 4);

  std::string base_name() const override { return "HOTSPOT"; }
  core::Precision precision() const override { return precision_; }
  bool fork_safe() const override { return true; }
  OutputGeometry output_geometry() const override {
    OutputGeometry g = Workload::output_geometry();
    g.rows = n_;
    g.cols = n_;
    return g;
  }
  unsigned grid_dim() const { return n_; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  core::Precision precision_;
  unsigned n_;
  unsigned steps_;
  isa::Program program_;
  std::uint32_t temp_[2] = {0, 0};
  std::uint32_t power_ = 0;
};

/// LavaMD (Rodinia): particle interactions within neighbouring boxes, with
/// an exponential force term (SFU transcendental) and shared-memory staging
/// of the neighbour box. One block per box; low occupancy as in Table I.
class Lava final : public core::Workload {
 public:
  Lava(core::WorkloadConfig config, core::Precision precision,
       unsigned boxes = 0, unsigned particles_per_box = 64);

  std::string base_name() const override { return "LAVA"; }
  core::Precision precision() const override { return precision_; }
  bool fork_safe() const override { return true; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  core::Precision precision_;
  unsigned boxes_;
  unsigned ppb_;
  isa::Program program_;
  std::uint32_t pos_ = 0;
  std::uint32_t charge_ = 0;
  std::uint32_t force_ = 0;
};

}  // namespace gpurel::kernels
