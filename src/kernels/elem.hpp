// Precision-generic element emission: lets one kernel source serve the
// paper's half/single/double variants (Hotspot, Lava, MxM, ... run the SAME
// kernel for every precision — §VI), with FP64 transparently mapped to
// register pairs and FP16 to packed 16-bit loads/stores.
#pragma once

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/fp16.hpp"
#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

/// A value of the emitter's precision held in registers.
struct Elem {
  isa::Reg r{};       // Int32 / Half / Single
  isa::RegPair d{};   // Double
};

class ElemEmitter {
 public:
  ElemEmitter(isa::KernelBuilder& b, core::Precision p) : b_(b), p_(p) {
    if (p == core::Precision::Int32)
      throw std::invalid_argument("ElemEmitter: integer codes emit directly");
  }

  core::Precision precision() const { return p_; }
  unsigned esz() const { return core::precision_bytes(p_); }
  bool is_double() const { return p_ == core::Precision::Double; }
  bool is_half() const { return p_ == core::Precision::Half; }

  Elem alloc() {
    Elem e;
    if (is_double()) e.d = b_.reg_pair();
    else e.r = b_.reg();
    return e;
  }
  void free(Elem e) {
    if (is_double()) b_.free(e.d);
    else b_.free(e.r);
  }

  void constant(Elem dst, double v) {
    if (is_double()) b_.movd(dst.d, v);
    else if (is_half()) b_.movh(dst.r, static_cast<float>(v));
    else b_.movf(dst.r, static_cast<float>(v));
  }

  void load(Elem dst, isa::Reg addr, std::int32_t offset = 0) {
    if (is_double()) b_.ldg64(dst.d, addr, offset);
    else if (is_half()) b_.ldg(dst.r, addr, offset, isa::MemWidth::B16);
    else b_.ldg(dst.r, addr, offset);
  }
  void store(isa::Reg addr, Elem v, std::int32_t offset = 0) {
    if (is_double()) b_.stg64(addr, v.d, offset);
    else if (is_half()) b_.stg(addr, v.r, offset, isa::MemWidth::B16);
    else b_.stg(addr, v.r, offset);
  }
  void load_shared(Elem dst, isa::Reg addr, std::int32_t offset = 0) {
    if (is_double()) b_.lds64(dst.d, addr, offset);
    else if (is_half()) b_.lds(dst.r, addr, offset, isa::MemWidth::B16);
    else b_.lds(dst.r, addr, offset);
  }
  void store_shared(isa::Reg addr, Elem v, std::int32_t offset = 0) {
    if (is_double()) b_.sts64(addr, v.d, offset);
    else if (is_half()) b_.sts(addr, v.r, offset, isa::MemWidth::B16);
    else b_.sts(addr, v.r, offset);
  }

  void add(Elem d, Elem a, Elem b) {
    if (is_double()) b_.dadd(d.d, a.d, b.d);
    else if (is_half()) b_.hadd(d.r, a.r, b.r);
    else b_.fadd(d.r, a.r, b.r);
  }
  void mul(Elem d, Elem a, Elem b) {
    if (is_double()) b_.dmul(d.d, a.d, b.d);
    else if (is_half()) b_.hmul(d.r, a.r, b.r);
    else b_.fmul(d.r, a.r, b.r);
  }
  /// d = a*b + c, honouring the compiler profile's FMA contraction.
  void mul_add(Elem d, Elem a, Elem b, Elem c) {
    if (is_double()) b_.mul_add_f64(d.d, a.d, b.d, c.d);
    else if (is_half()) b_.mul_add_f16(d.r, a.r, b.r, c.r);
    else b_.mul_add_f32(d.r, a.r, b.r, c.r);
  }
  void mov(Elem d, Elem a) {
    if (is_double()) {
      b_.mov(isa::Reg{d.d.index}, isa::Reg{a.d.index});
      b_.mov(isa::Reg{static_cast<std::uint8_t>(d.d.index + 1)},
             isa::Reg{static_cast<std::uint8_t>(a.d.index + 1)});
    } else {
      b_.mov(d.r, a.r);
    }
  }
  /// d = p ? a : b (per 32-bit word for FP64 pairs).
  void select(Elem d, Elem a, Elem b, isa::Pred p, bool negate = false) {
    if (is_double()) {
      b_.sel(isa::Reg{d.d.index}, isa::Reg{a.d.index}, isa::Reg{b.d.index}, p,
             negate);
      b_.sel(isa::Reg{static_cast<std::uint8_t>(d.d.index + 1)},
             isa::Reg{static_cast<std::uint8_t>(a.d.index + 1)},
             isa::Reg{static_cast<std::uint8_t>(b.d.index + 1)}, p, negate);
    } else {
      b_.sel(d.r, a.r, b.r, p, negate);
    }
  }
  /// d = max(a, b) via compare+select (works in every precision).
  void maximum(Elem d, Elem a, Elem b, isa::Pred scratch) {
    setp(scratch, a, b, isa::CmpOp::GT);
    select(d, a, b, scratch);
  }
  void setp(isa::Pred p, Elem a, Elem b, isa::CmpOp cmp) {
    if (is_double()) b_.dsetp(p, a.d, b.d, cmp);
    else if (is_half()) b_.hsetp(p, a.r, b.r, cmp);
    else b_.fsetp(p, a.r, b.r, cmp);
  }
  /// Convert an int register (e.g. a thread id) to this precision.
  void from_int(Elem d, isa::Reg i) {
    if (is_double()) {
      b_.i2d(d.d, i);
    } else if (is_half()) {
      b_.i2f(d.r, i);
      b_.f2h(d.r, d.r);
    } else {
      b_.i2f(d.r, i);
    }
  }

 private:
  isa::KernelBuilder& b_;
  core::Precision p_;
};

/// Host-side element packing for inputs/outputs of a given precision.
template <typename Fn>
inline std::vector<std::uint8_t> pack_elements(core::Precision p, std::size_t count,
                                               Fn&& value_at) {
  std::vector<std::uint8_t> out(count * core::precision_bytes(p));
  for (std::size_t i = 0; i < count; ++i) {
    const double v = value_at(i);
    switch (p) {
      case core::Precision::Half: {
        const std::uint16_t h = Half::from_float(static_cast<float>(v)).bits();
        std::memcpy(&out[i * 2], &h, 2);
        break;
      }
      case core::Precision::Single: {
        const float f = static_cast<float>(v);
        std::memcpy(&out[i * 4], &f, 4);
        break;
      }
      case core::Precision::Double: {
        std::memcpy(&out[i * 8], &v, 8);
        break;
      }
      case core::Precision::Int32: {
        const auto iv = static_cast<std::int32_t>(v);
        std::memcpy(&out[i * 4], &iv, 4);
        break;
      }
    }
  }
  return out;
}

}  // namespace gpurel::kernels
