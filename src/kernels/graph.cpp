#include "kernels/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace gpurel::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {

/// Device-stepping gate: wrap `body` in a check of the one-shot flag at
/// `gate`, so the launch is a cheap no-op once the iteration chain has
/// stopped lighting flags. Shared by the BFS and CCL device-stepped kernels.
void emit_gated(KernelBuilder& b, Reg gate, const std::function<void()>& body) {
  Reg g = b.reg();
  b.ldg(g, gate);
  Pred live = b.pred();
  b.isetpi(live, g, 1, CmpOp::EQ);
  b.if_then(live, body);
  b.free(live);
  b.free(g);
}

}  // namespace

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

Bfs::Bfs(core::WorkloadConfig config, unsigned nodes, unsigned degree,
         core::Stepping stepping)
    : Workload(std::move(config)),
      nodes_(nodes),
      degree_(degree),
      stepping_(stepping) {
  if (nodes_ == 0)
    nodes_ = std::max(256u, static_cast<unsigned>(2048 * config_.scale) / 64 * 64);
  if (nodes_ % 64 != 0) throw std::invalid_argument("Bfs: nodes must be 64-aligned");
}

namespace {

/// One BFS level for one node: consume the in-frontier, relax edges, build
/// the out-frontier, and store 1 to `changed` when any cost updates. The
/// host-stepped kernel polls `changed`; the device-stepped kernel points it
/// at the next level's gate flag. Emission order matches the original
/// host-only kernel exactly, so that program stays byte-identical.
void emit_bfs_level(KernelBuilder& b, Reg row_off, Reg col, Reg cost, Reg fin,
                    Reg fout, Reg changed, Reg n) {
  Reg v = b.global_tid_x();
  Pred in_range = b.pred();
  b.isetp(in_range, v, n, CmpOp::LT);
  b.if_then(in_range, [&] {
    Reg fin_addr = b.reg(), fv = b.reg();
    b.addr_index(fin_addr, fin, v, 4);
    b.ldg(fv, fin_addr);
    Pred active = b.pred();
    b.isetpi(active, fv, 1, CmpOp::EQ);
    b.if_then(active, [&] {
      Reg zero = b.reg();
      b.movi(zero, 0);
      b.stg(fin_addr, zero);
      Reg cv_addr = b.reg(), cv = b.reg();
      b.addr_index(cv_addr, cost, v, 4);
      b.ldg(cv, cv_addr);
      Reg next_cost = b.reg();
      b.iaddi(next_cost, cv, 1);
      // edge range [row_off[v], row_off[v+1])
      Reg ra = b.reg(), e = b.reg(), e_end = b.reg();
      b.addr_index(ra, row_off, v, 4);
      b.ldg(e, ra);
      b.ldg(e_end, ra, 4);
      b.while_loop([&](Pred p) { b.isetp(p, e, e_end, CmpOp::LT); },
                   [&] {
                     Reg ca = b.reg(), u = b.reg();
                     b.addr_index(ca, col, e, 4);
                     b.ldg(u, ca);
                     Reg cu_addr = b.reg(), cu = b.reg();
                     b.addr_index(cu_addr, cost, u, 4);
                     b.ldg(cu, cu_addr);
                     Pred unvisited = b.pred();
                     b.isetpi(unvisited, cu, 0, CmpOp::LT);
                     b.if_then(unvisited, [&] {
                       b.stg(cu_addr, next_cost);
                       Reg one = b.reg(), fa = b.reg();
                       b.movi(one, 1);
                       b.addr_index(fa, fout, u, 4);
                       b.stg(fa, one);
                       b.stg(changed, one);
                       b.free(one);
                       b.free(fa);
                     });
                     b.free(unvisited);
                     b.free(ca);
                     b.free(u);
                     b.free(cu_addr);
                     b.free(cu);
                     b.iaddi(e, e, 1);
                   });
      b.free(active);
    });
  });
}

}  // namespace

void Bfs::build_programs() {
  if (stepping_ == core::Stepping::Host) {
    KernelBuilder b("BFS.step", config_.profile);
    Reg row_off = b.load_param(0), col = b.load_param(1), cost = b.load_param(2);
    Reg fin = b.load_param(3), fout = b.load_param(4), changed = b.load_param(5);
    Reg n = b.load_param(6);
    emit_bfs_level(b, row_off, col, cost, fin, fout, changed, n);
    step_ = b.build();
  } else {
    // Device stepping: same level body, but gated on this level's flag and
    // notifying the next level's flag (param layout matches the host kernel
    // with the gate address appended).
    KernelBuilder b("BFS.dstep", config_.profile);
    Reg row_off = b.load_param(0), col = b.load_param(1), cost = b.load_param(2);
    Reg fin = b.load_param(3), fout = b.load_param(4), next = b.load_param(5);
    Reg n = b.load_param(6), gate = b.load_param(7);
    emit_gated(b, gate, [&] {
      emit_bfs_level(b, row_off, col, cost, fin, fout, next, n);
    });
    step_ = b.build();
  }
  register_program(&step_);
}

void Bfs::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::uint32_t> row_off(nodes_ + 1);
  std::vector<std::uint32_t> col;
  col.reserve(static_cast<std::size_t>(nodes_) * degree_);
  for (unsigned v = 0; v < nodes_; ++v) {
    row_off[v] = static_cast<std::uint32_t>(col.size());
    for (unsigned d = 0; d < degree_; ++d)
      col.push_back(static_cast<std::uint32_t>(rng.uniform_u64(nodes_)));
  }
  row_off[nodes_] = static_cast<std::uint32_t>(col.size());

  std::vector<std::int32_t> cost(nodes_, -1);
  cost[0] = 0;
  std::vector<std::uint32_t> fin(nodes_, 0), fout(nodes_, 0);
  fin[0] = 1;

  row_off_ = dev.alloc_copy<std::uint32_t>(row_off);
  col_ = dev.alloc_copy<std::uint32_t>(col);
  cost_ = dev.alloc_copy<std::int32_t>(cost);
  frontier_[0] = dev.alloc_copy<std::uint32_t>(fin);
  frontier_[1] = dev.alloc_copy<std::uint32_t>(fout);
  changed_ = dev.alloc(4);
  if (stepping_ == core::Stepping::Device) {
    // One gate flag per level plus the final convergence flag; level 0 is
    // armed here (host writes in setup() are fork-safe — only execute() must
    // stay free of mid-trial host access).
    std::vector<std::uint32_t> flags(kMaxLevels + 1, 0);
    flags[0] = 1;
    flags_ = dev.alloc_copy<std::uint32_t>(flags);
  }
  register_output(cost_, nodes_ * 4);
}

void Bfs::execute(sim::Device& dev, core::TrialRunner& runner) {
  if (stepping_ == core::Stepping::Device) {
    // Fixed launch sequence: level k runs only if launch k-1 set flags[k],
    // and sets flags[k+1] when any cost changed. One host read after the
    // last launch, so the whole trial is reachable from a device snapshot.
    for (unsigned level = 0; level < kMaxLevels; ++level) {
      sim::KernelLaunch kl{&step_,
                           {nodes_ / 64, 1},
                           {64, 1},
                           0,
                           {row_off_, col_, cost_, frontier_[level % 2],
                            frontier_[(level + 1) % 2], flags_ + (level + 1) * 4,
                            nodes_, flags_ + level * 4}};
      if (!runner.launch(kl)) return;
    }
    // Still expanding after the last allowed level: host-visible hang.
    if (dev.memory().read_u32(flags_ + kMaxLevels * 4) != 0)
      runner.force_due(sim::DueKind::Watchdog);
    return;
  }
  for (unsigned level = 0;; ++level) {
    if (level >= kMaxLevels) {
      // Fault-perturbed traversal refusing to converge: host-visible hang.
      runner.force_due(sim::DueKind::Watchdog);
      return;
    }
    dev.memory().write_u32(changed_, 0);
    sim::KernelLaunch kl{&step_,
                         {nodes_ / 64, 1},
                         {64, 1},
                         0,
                         {row_off_, col_, cost_, frontier_[level % 2],
                          frontier_[(level + 1) % 2], changed_, nodes_}};
    if (!runner.launch(kl)) return;
    if (dev.memory().read_u32(changed_) == 0) break;
  }
}

// ---------------------------------------------------------------------------
// CCL
// ---------------------------------------------------------------------------

Ccl::Ccl(core::WorkloadConfig config, unsigned dim, core::Stepping stepping)
    : Workload(std::move(config)), dim_(dim), stepping_(stepping) {
  if (dim_ < 8 || (dim_ & (dim_ - 1)) != 0)
    throw std::invalid_argument("Ccl: dim must be a power of two >= 8");
  dim_log2_ = 0;
  while ((dim_ >> dim_log2_) != 1) ++dim_log2_;
}

namespace {

/// One label-propagation sweep for one pixel; stores 1 to `changed` when the
/// pixel's label shrank. Emission order matches the original host-only
/// kernel exactly, so that program stays byte-identical.
void emit_ccl_sweep(KernelBuilder& b, Reg img, Reg labels, Reg changed,
                    unsigned dim, unsigned dim_log2) {
  Reg p = b.global_tid_x();
  Reg row = b.reg(), c = b.reg();
  b.shr(row, p, dim_log2);
  b.landi(c, p, static_cast<std::int32_t>(dim - 1));

  Reg ia = b.reg(), fg = b.reg();
  b.addr_index(ia, img, p, 4);
  b.ldg(fg, ia);
  Pred is_fg = b.pred();
  b.isetpi(is_fg, fg, 1, CmpOp::EQ);
  b.if_then(is_fg, [&] {
    Reg la = b.reg(), m = b.reg();
    b.addr_index(la, labels, p, 4);
    b.ldg(m, la);
    Reg orig = b.reg();
    b.mov(orig, m);

    auto consider = [&](std::int32_t q_off, Pred bound) {
      b.if_then(bound, [&] {
        Reg qi = b.reg(), qa = b.reg(), qfg = b.reg();
        b.iaddi(qi, p, q_off);
        b.addr_index(qa, img, qi, 4);
        b.ldg(qfg, qa);
        Pred q_fg = b.pred();
        b.isetpi(q_fg, qfg, 1, CmpOp::EQ);
        b.if_then(q_fg, [&] {
          Reg ql_addr = b.reg(), ql = b.reg();
          b.addr_index(ql_addr, labels, qi, 4);
          b.ldg(ql, ql_addr);
          b.imnmx(m, m, ql, /*take_max=*/false);
          b.free(ql_addr);
          b.free(ql);
        });
        b.free(q_fg);
        b.free(qi);
        b.free(qa);
        b.free(qfg);
      });
    };

    Pred bound = b.pred();
    b.isetpi(bound, row, 0, CmpOp::GT);
    consider(-static_cast<std::int32_t>(dim), bound);
    b.isetpi(bound, row, static_cast<std::int32_t>(dim - 1), CmpOp::LT);
    consider(static_cast<std::int32_t>(dim), bound);
    b.isetpi(bound, c, 0, CmpOp::GT);
    consider(-1, bound);
    b.isetpi(bound, c, static_cast<std::int32_t>(dim - 1), CmpOp::LT);
    consider(1, bound);
    b.free(bound);

    Pred shrunk = b.pred();
    b.isetp(shrunk, m, orig, CmpOp::LT);
    b.if_then(shrunk, [&] {
      b.stg(la, m);
      Reg one = b.reg();
      b.movi(one, 1);
      b.stg(changed, one);
      b.free(one);
    });
    b.free(shrunk);
  });
}

}  // namespace

void Ccl::build_programs() {
  if (stepping_ == core::Stepping::Host) {
    KernelBuilder b("CCL.step", config_.profile);
    Reg img = b.load_param(0), labels = b.load_param(1),
        changed = b.load_param(2);
    emit_ccl_sweep(b, img, labels, changed, dim_, dim_log2_);
    step_ = b.build();
  } else {
    KernelBuilder b("CCL.dstep", config_.profile);
    Reg img = b.load_param(0), labels = b.load_param(1),
        next = b.load_param(2), gate = b.load_param(3);
    emit_gated(b, gate,
               [&] { emit_ccl_sweep(b, img, labels, next, dim_, dim_log2_); });
    step_ = b.build();
  }
  register_program(&step_);
}

void Ccl::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  const unsigned total = dim_ * dim_;
  std::vector<std::uint32_t> img(total);
  std::vector<std::int32_t> labels(total);
  for (unsigned p = 0; p < total; ++p) {
    img[p] = rng.bernoulli(0.6) ? 1 : 0;
    labels[p] = img[p] ? static_cast<std::int32_t>(p) : -1;
  }
  img_ = dev.alloc_copy<std::uint32_t>(img);
  labels_ = dev.alloc_copy<std::int32_t>(labels);
  changed_ = dev.alloc(4);
  if (stepping_ == core::Stepping::Device) {
    std::vector<std::uint32_t> flags(4 * dim_ + 1, 0);
    flags[0] = 1;
    flags_ = dev.alloc_copy<std::uint32_t>(flags);
  }
  register_output(labels_, total * 4);
}

void Ccl::execute(sim::Device& dev, core::TrialRunner& runner) {
  const unsigned total = dim_ * dim_;
  const unsigned max_iters = 4 * dim_;
  if (stepping_ == core::Stepping::Device) {
    // Fixed launch sequence with per-iteration gate flags (see Bfs).
    for (unsigned it = 0; it < max_iters; ++it) {
      sim::KernelLaunch kl{&step_,
                           {total / 64, 1},
                           {64, 1},
                           0,
                           {img_, labels_, flags_ + (it + 1) * 4,
                            flags_ + it * 4}};
      if (!runner.launch(kl)) return;
    }
    if (dev.memory().read_u32(flags_ + max_iters * 4) != 0)
      runner.force_due(sim::DueKind::Watchdog);
    return;
  }
  for (unsigned it = 0;; ++it) {
    if (it >= max_iters) {
      runner.force_due(sim::DueKind::Watchdog);
      return;
    }
    dev.memory().write_u32(changed_, 0);
    sim::KernelLaunch kl{&step_, {total / 64, 1}, {64, 1}, 0,
                         {img_, labels_, changed_}};
    if (!runner.launch(kl)) return;
    if (dev.memory().read_u32(changed_) == 0) break;
  }
}

// ---------------------------------------------------------------------------
// NW
// ---------------------------------------------------------------------------

Nw::Nw(core::WorkloadConfig config, unsigned len)
    : Workload(std::move(config)), len_(len) {
  if (len_ == 0)
    len_ = std::max(16u, static_cast<unsigned>(48 * config_.scale) / 8 * 8);
  if (len_ < 8) throw std::invalid_argument("Nw: len too small");
}

void Nw::build_programs() {
  KernelBuilder b("NW.diag", config_.profile);
  Reg score = b.load_param(0), seqa = b.load_param(1), seqb = b.load_param(2);
  Reg n = b.load_param(3), d = b.load_param(4), start_i = b.load_param(5);
  Reg count = b.load_param(6);

  Reg t = b.global_tid_x();
  Pred in_range = b.pred();
  b.isetp(in_range, t, count, CmpOp::LT);
  b.if_then(in_range, [&] {
    Reg i = b.reg(), j = b.reg();
    b.iadd(i, start_i, t);
    Reg neg_i = b.reg(), minus1 = b.reg();
    b.movi(minus1, -1);
    b.imad(neg_i, i, minus1, d);  // j = d - i
    b.mov(j, neg_i);

    Reg sa = b.reg(), sb = b.reg(), addr = b.reg();
    b.addr_index(addr, seqa, i, 4);
    b.ldg(sa, addr);
    b.addr_index(addr, seqb, j, 4);
    b.ldg(sb, addr);
    Pred eq = b.pred();
    b.isetp(eq, sa, sb, CmpOp::EQ);
    Reg match = b.reg(), mismatch = b.reg(), sim = b.reg();
    b.movi(match, 1);
    b.movi(mismatch, -1);
    b.sel(sim, match, mismatch, eq);

    // stride = n + 1; cell (i+1, j+1)
    Reg stride = b.reg();
    b.iaddi(stride, n, 1);
    Reg base = b.reg();  // index of score[i][j]
    b.imad(base, i, stride, j);
    Reg diag = b.reg(), up = b.reg(), left = b.reg();
    b.addr_index(addr, score, base, 4);
    b.ldg(diag, addr);                       // score[i][j]
    b.ldg(up, addr, 4);                      // score[i][j+1]
    Reg base2 = b.reg();
    b.iadd(base2, base, stride);
    b.addr_index(addr, score, base2, 4);
    b.ldg(left, addr);                       // score[i+1][j]

    b.iadd(diag, diag, sim);
    b.iaddi(up, up, -2);
    b.iaddi(left, left, -2);
    b.imnmx(diag, diag, up, /*take_max=*/true);
    b.imnmx(diag, diag, left, /*take_max=*/true);
    b.addr_index(addr, score, base2, 4);
    b.stg(addr, diag, 4);                    // score[i+1][j+1]
  });
  diag_ = b.build();
  register_program(&diag_);
}

void Nw::setup(sim::Device& dev) {
  Rng rng(config_.input_seed);
  std::vector<std::int32_t> a(len_), bb(len_);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.uniform_u64(4));
  for (auto& v : bb) v = static_cast<std::int32_t>(rng.uniform_u64(4));
  const unsigned stride = len_ + 1;
  std::vector<std::int32_t> score(static_cast<std::size_t>(stride) * stride, 0);
  for (unsigned k = 0; k < stride; ++k) {
    score[k] = -2 * static_cast<std::int32_t>(k);            // top row
    score[k * stride] = -2 * static_cast<std::int32_t>(k);   // left column
  }
  score_ = dev.alloc_copy<std::int32_t>(score);
  seqa_ = dev.alloc_copy<std::int32_t>(a);
  seqb_ = dev.alloc_copy<std::int32_t>(bb);
  register_output(score_, stride * stride * 4);
}

void Nw::execute(sim::Device& dev, core::TrialRunner& runner) {
  (void)dev;
  for (unsigned d = 0; d <= 2 * (len_ - 1); ++d) {
    const unsigned start_i = d >= len_ ? d - len_ + 1 : 0;
    const unsigned end_i = std::min(d, len_ - 1);
    const unsigned count = end_i - start_i + 1;
    const unsigned blocks = (count + 31) / 32;
    sim::KernelLaunch kl{&diag_, {blocks, 1}, {32, 1}, 0,
                         {score_, seqa_, seqb_, len_, d, start_i, count}};
    if (!runner.launch(kl)) return;
  }
}

}  // namespace gpurel::kernels
