// Integer sorting codes (paper Table I: Mergesort and Quicksort, INT32).
//
// Mergesort: bottom-up, one kernel launch per pass; each thread merges two
// sorted runs between ping-pong buffers using sentinel-guarded selection.
//
// Quicksort: host-driven recursion. A partition kernel scatters a segment
// around its pivot using global atomic counters; the host reads the split
// point and pushes sub-segments until they are small, then a final kernel
// insertion-sorts all small segments in parallel (one thread each).
//
// Quicksort also comes device-stepped (core::Stepping::Device): the
// recursion becomes breadth-first rounds over ping-ponged device segment
// lists (plan / scatter / finish kernels per round, see sort.cpp), small
// segments accumulate in a device-built table, and the host only issues the
// fixed launch sequence plus two post-loop reads — making the workload
// fork-safe for checkpoint-fork campaign batching. The host-stepped kernels
// and schedule are byte-identical to the pre-variant code.
#pragma once

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

class Mergesort final : public core::Workload {
 public:
  explicit Mergesort(core::WorkloadConfig config, unsigned n = 0);

  std::string base_name() const override { return "MERGESORT"; }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override { return true; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned n_;
  unsigned passes_ = 0;
  isa::Program merge_;
  std::uint32_t buf_[2] = {0, 0};
};

class Quicksort final : public core::Workload {
 public:
  explicit Quicksort(core::WorkloadConfig config, unsigned n = 0,
                     core::Stepping stepping = core::Stepping::Host);

  std::string base_name() const override {
    return stepping_ == core::Stepping::Device ? "QUICKSORT-DEV" : "QUICKSORT";
  }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override {
    return stepping_ == core::Stepping::Device;
  }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  static constexpr unsigned kSmall = 32;         // insertion-sort threshold
  static constexpr unsigned kScatterBlocks = 4;  // device-stepped grid width

  void build_device_programs();
  void execute_device(sim::Device& dev, core::TrialRunner& runner);

  unsigned n_;
  core::Stepping stepping_;
  isa::Program partition_;
  isa::Program copyback_;
  isa::Program small_sort_;
  std::uint32_t data_ = 0, scratch_ = 0, counters_ = 0, segtab_ = 0;
  // Device stepping: breadth-first rounds over ping-ponged segment lists.
  isa::Program dplan_, dscatter_, dfinish_;
  unsigned segcap_ = 0;    // slots per segment list
  unsigned smallcap_ = 0;  // slots in the device-built small-segment table
  unsigned rounds_ = 0;    // fixed partition-round count
  std::uint32_t segs_[2] = {0, 0};  // (lo, hi) pair lists, ping-ponged
  std::uint32_t cnts_ = 0;          // two u32 counts, one per list
  std::uint32_t pivots_ = 0, smallcnt_ = 0, err_ = 0;
};

}  // namespace gpurel::kernels
