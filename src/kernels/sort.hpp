// Integer sorting codes (paper Table I: Mergesort and Quicksort, INT32).
//
// Mergesort: bottom-up, one kernel launch per pass; each thread merges two
// sorted runs between ping-pong buffers using sentinel-guarded selection.
//
// Quicksort: host-driven recursion. A partition kernel scatters a segment
// around its pivot using global atomic counters; the host reads the split
// point and pushes sub-segments until they are small, then a final kernel
// insertion-sorts all small segments in parallel (one thread each).
#pragma once

#include "core/workload.hpp"
#include "isa/kernel_builder.hpp"

namespace gpurel::kernels {

class Mergesort final : public core::Workload {
 public:
  explicit Mergesort(core::WorkloadConfig config, unsigned n = 0);

  std::string base_name() const override { return "MERGESORT"; }
  core::Precision precision() const override { return core::Precision::Int32; }
  bool fork_safe() const override { return true; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned n_;
  unsigned passes_ = 0;
  isa::Program merge_;
  std::uint32_t buf_[2] = {0, 0};
};

class Quicksort final : public core::Workload {
 public:
  explicit Quicksort(core::WorkloadConfig config, unsigned n = 0);

  std::string base_name() const override { return "QUICKSORT"; }
  core::Precision precision() const override { return core::Precision::Int32; }

 protected:
  void build_programs() override;
  void setup(sim::Device& dev) override;
  void execute(sim::Device& dev, core::TrialRunner& runner) override;

 private:
  unsigned n_;
  isa::Program partition_;
  isa::Program copyback_;
  isa::Program small_sort_;
  std::uint32_t data_ = 0, scratch_ = 0, counters_ = 0, segtab_ = 0;
};

}  // namespace gpurel::kernels
