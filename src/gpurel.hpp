// Umbrella header: the public API of the gpurel framework.
//
//   #include "gpurel.hpp"
//
// Layers (each usable on its own):
//   isa::KernelBuilder / isa::Program     write SASS-like kernels
//   sim::Device                           run them on a simulated GPU
//   profile::profile_workload             NVPROF-style metrics
//   fault::run_campaign                   SASSIFI / NVBitFI AVF campaigns
//   beam::run_beam                        beam-experiment FIT measurement
//   model::predict_fit                    the paper's Eq. 1-4 prediction
//   core::Study                           the full cross-validation methodology
#pragma once

#include "arch/gpu_config.hpp"
#include "beam/cross_section.hpp"
#include "beam/experiment.hpp"
#include "common/cli.hpp"
#include "common/fp16.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "core/workload.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "isa/kernel_builder.hpp"
#include "isa/program.hpp"
#include "kernels/registry.hpp"
#include "model/fit_model.hpp"
#include "model/tuned_avf.hpp"
#include "model/what_if.hpp"
#include "profile/profiler.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"
