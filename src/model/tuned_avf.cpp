#include "model/tuned_avf.hpp"

namespace gpurel::model {

TunedAvf beam_tuned_avf(const fault::CampaignResult& campaign,
                        const FitInputs& inputs,
                        const profile::CodeProfile& profile) {
  TunedAvf out;
  double covered = 0.0, total = 0.0;
  double sdc = 0.0, due = 0.0, masked = 0.0;

  for (std::size_t ki = 0;
       ki < static_cast<std::size_t>(isa::UnitKind::kCount); ++ki) {
    const auto kind = static_cast<isa::UnitKind>(ki);
    const UnitFit& uf = inputs.unit(kind);
    if (!uf.measured) continue;
    const double f = profile.lane_fraction(kind);
    if (f <= 0.0) continue;
    // Physical strike weight of this kind in this code: raw unit rate
    // (masking-corrected) x dynamic usage.
    const double correction = uf.micro_avf > 0.05 ? 1.0 / uf.micro_avf : 1.0;
    const double w = f * uf.fit_sdc * correction;
    total += w;
    const auto& ks = campaign.kind(kind);
    if (ks.counts.total() == 0) continue;
    covered += w;
    sdc += w * ks.counts.avf_sdc();
    due += w * ks.counts.avf_due();
    masked += w * ks.counts.masked_fraction();
  }

  if (covered > 0.0) {
    out.sdc = sdc / covered;
    out.due = due / covered;
    out.masked = masked / covered;
  }
  out.covered_weight_fraction = total > 0.0 ? covered / total : 0.0;
  return out;
}

}  // namespace gpurel::model
