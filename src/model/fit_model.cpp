#include "model/fit_model.hpp"

#include <algorithm>

namespace gpurel::model {

using isa::UnitKind;

bool kind_in_method(UnitKind k) {
  switch (k) {
    case UnitKind::HADD:
    case UnitKind::HMUL:
    case UnitKind::HFMA:
    case UnitKind::FADD:
    case UnitKind::FMUL:
    case UnitKind::FFMA:
    case UnitKind::DADD:
    case UnitKind::DMUL:
    case UnitKind::DFMA:
    case UnitKind::IADD:
    case UnitKind::IMUL:
    case UnitKind::IMAD:
    case UnitKind::MMA_H:
    case UnitKind::MMA_F:
    case UnitKind::LDST:
      return true;
    default:
      return false;  // SFU / moves / control: outside the method (paper §VII)
  }
}

FitPrediction predict_fit(const FitInputs& inputs, const CodeObservables& code,
                          double scale) {
  FitPrediction out;
  out.phi = code.profile.phi();  // Eq. 4

  for (std::size_t ki = 0; ki < out.sdc_per_kind.size(); ++ki) {
    const auto kind = static_cast<UnitKind>(ki);
    if (!kind_in_method(kind)) continue;
    const UnitFit& uf = inputs.unit(kind);
    if (!uf.measured) continue;

    const double f = code.profile.lane_fraction(kind);  // f(INST_i)
    if (f <= 0.0) continue;

    // Undo the microbenchmark's own masking so FIT_i is the raw unit rate.
    const double correction = uf.micro_avf > 0.05 ? 1.0 / uf.micro_avf : 1.0;

    double avf_sdc = 0.0, avf_due = 0.0;
    if (code.avf != nullptr) {
      const auto& ks = code.avf->kind(kind);
      if (ks.counts.total() > 0) {
        avf_sdc = ks.counts.avf_sdc();
        avf_due = ks.counts.avf_due();
      }
    }

    // The unit's raw fault rate is its microbenchmark SDC FIT with the
    // microbenchmark's masking undone; the code's per-kind AVFs then split
    // that rate into SDC and DUE manifestations (Eq. 2, applied per class).
    const double raw_rate = uf.fit_sdc * correction;
    const double sdc = scale * f * avf_sdc * raw_rate * out.phi;  // Eq. 2 x 4
    const double due = scale * f * avf_due * raw_rate * out.phi;
    out.sdc_per_kind[ki] = sdc;
    out.sdc_inst += sdc;
    out.due_inst += due;
  }

  // Eq. 3: memory levels, only meaningful with ECC disabled.
  if (!code.ecc) {
    const double onchip_bits = code.rf_bits + code.shared_bits;
    out.sdc_mem = onchip_bits * inputs.sram_bit_fit_sdc * code.mem_avf_sdc +
                  code.global_bits * inputs.dram_bit_fit_sdc * code.mem_avf_sdc;
    out.due_mem = onchip_bits * inputs.sram_bit_fit_due * code.mem_avf_due +
                  code.global_bits * inputs.dram_bit_fit_due * code.mem_avf_due;
  }

  out.sdc = out.sdc_inst + out.sdc_mem;
  out.due = out.due_inst + out.due_mem;
  return out;
}

}  // namespace gpurel::model
