// The paper's FIT-rate prediction (§IV):
//
//   †FIT = Σ_i P(E_INST_i) + Σ_j P(E_MEM_j)                      (Eq. 1)
//   P(E_INST_i) = f(INST_i) · AVF_INST_i · FIT_INST_i · φ        (Eq. 2 + 4)
//   P(E_MEM_j)  = f(MEM_j)  · AVF_MEM_j  · FIT_MEM_j             (Eq. 3)
//   φ = AchievedOccupancy · IPC                                  (Eq. 4)
//
// where f(INST_i) is the dynamic fraction of instruction kind i, FIT_INST_i
// the per-unit FIT measured by beam on the microbenchmarks (corrected for
// the microbenchmark's own masking by its injected AVF), AVF_INST_i the
// per-kind AVF measured by fault injection on the *code*, and the memory
// terms cover the instantiated register-file/shared/global bits (only when
// ECC is off; SECDED drives AVF_MEM ≈ 0).
//
// Only the instruction kinds the paper's method covers (H/F/D ADD/MUL/FMA,
// IADD/IMUL/IMAD, MMA, LDST) contribute: faults in unmeasured units (SFU,
// moves, predicates, control) and in hidden resources are invisible to the
// method — the very gap the beam-vs-prediction comparison quantifies.
#pragma once

#include <array>
#include <cstdint>

#include "fault/campaign.hpp"
#include "isa/opcode.hpp"
#include "profile/profiler.hpp"

namespace gpurel::model {

/// Per-unit beam characterization (Fig. 3 data in machine-readable form).
struct UnitFit {
  double fit_sdc = 0.0;
  double fit_due = 0.0;
  /// Microbenchmark AVF (>= ~0.7 in the paper, 1.0 for integer chains);
  /// divides the measured FIT to undo the microbenchmark's own masking.
  double micro_avf = 1.0;
  bool measured = false;
};

struct FitInputs {
  std::array<UnitFit, static_cast<std::size_t>(isa::UnitKind::kCount)> units{};
  /// Per-bit FIT of on-chip SRAM (register file; shared memory assumed
  /// equal) from the RF microbenchmark, ECC off.
  double sram_bit_fit_sdc = 0.0;
  double sram_bit_fit_due = 0.0;
  /// Per-bit FIT of device memory, estimated from the LDST microbenchmark
  /// (ECC-off minus ECC-on, divided by the exposed bits).
  double dram_bit_fit_sdc = 0.0;
  double dram_bit_fit_due = 0.0;

  UnitFit& unit(isa::UnitKind k) { return units[static_cast<std::size_t>(k)]; }
  const UnitFit& unit(isa::UnitKind k) const {
    return units[static_cast<std::size_t>(k)];
  }
};

/// Everything the method knows about one code on one device.
struct CodeObservables {
  profile::CodeProfile profile;
  const fault::CampaignResult* avf = nullptr;  // injection campaign results
  /// Instantiated memory bits (time-averaged resident for RF/shared,
  /// allocated for global).
  double rf_bits = 0.0;
  double shared_bits = 0.0;
  double global_bits = 0.0;
  bool ecc = true;
  /// AVF of a memory bit fault (RF-mode injections when the injector has
  /// them; falls back to the code's overall AVF).
  double mem_avf_sdc = 0.0;
  double mem_avf_due = 0.0;
};

struct FitPrediction {
  double sdc = 0.0;
  double due = 0.0;
  double sdc_inst = 0.0;
  double sdc_mem = 0.0;
  double due_inst = 0.0;
  double due_mem = 0.0;
  double phi = 0.0;
  /// Per-kind SDC contributions (diagnostic).
  std::array<double, static_cast<std::size_t>(isa::UnitKind::kCount)>
      sdc_per_kind{};
};

/// The instruction kinds the methodology measures (µbench + injectable).
bool kind_in_method(isa::UnitKind k);

/// Global scale aligning the model's dimensionless φ-weighted combination
/// with the beam simulator's FIT unit. One constant for every code, device,
/// injector, and ECC setting (see DESIGN.md §5; the paper's two methods
/// share a normalization the same way).
inline constexpr double kModelScale = 1.3;

FitPrediction predict_fit(const FitInputs& inputs, const CodeObservables& code,
                          double scale = kModelScale);

}  // namespace gpurel::model
