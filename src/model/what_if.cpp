#include "model/what_if.hpp"

#include <algorithm>

namespace gpurel::model {

WhatIfResult what_if(const FitInputs& inputs, const CodeObservables& code,
                     const Hardening& scheme, double scale) {
  WhatIfResult out;
  out.baseline = predict_fit(inputs, code, scale);

  // Hardened prediction: start from the baseline and move protected SDC
  // contributions into detections.
  out.hardened = out.baseline;

  auto protect_kind = [&](isa::UnitKind k) {
    const auto ki = static_cast<std::size_t>(k);
    const double sdc = out.hardened.sdc_per_kind[ki];
    if (sdc <= 0.0) return;
    out.hardened.sdc_per_kind[ki] = 0.0;
    out.hardened.sdc_inst -= sdc;
    out.hardened.due_inst += sdc;  // duplication turns corruption into detection
  };

  if (scheme.duplicate_all) {
    for (std::size_t ki = 0; ki < out.hardened.sdc_per_kind.size(); ++ki)
      protect_kind(static_cast<isa::UnitKind>(ki));
  } else {
    for (isa::UnitKind k : scheme.hardened_units) protect_kind(k);
  }

  if (scheme.ecc_memory && !code.ecc) {
    // SECDED corrects single-bit upsets; only the ~2% multi-bit residue of
    // the formerly effective memory faults survives, as a detection
    // (consistent with the beam model's strike handling).
    const double mbu = 0.02;
    out.hardened.due_mem =
        (out.baseline.sdc_mem + out.baseline.due_mem) * mbu;
    out.hardened.sdc_mem = 0.0;
  }

  // Clamp accumulated subtraction residue.
  out.hardened.sdc_inst = std::max(0.0, out.hardened.sdc_inst);
  out.hardened.sdc = out.hardened.sdc_inst + out.hardened.sdc_mem;
  out.hardened.due = out.hardened.due_inst + out.hardened.due_mem;

  out.sdc_removed = std::max(0.0, out.baseline.sdc - out.hardened.sdc);
  out.due_added = std::max(0.0, out.hardened.due - out.baseline.due);
  out.sdc_reduction =
      out.baseline.sdc > 0.0 ? out.sdc_removed / out.baseline.sdc : 0.0;
  return out;
}

}  // namespace gpurel::model
