// Selective-hardening "what-if" analysis.
//
// The paper's motivation for trusting fault simulation is evaluating error
// mitigation before building it (§I: "Evaluating the effectiveness of many
// error mitigation techniques requires fault injection"). Once a code's
// Eq. 1-4 inputs exist, the FIT impact of a protection scheme is a
// prediction with the protected resources' AVF (or rate) zeroed:
//
//   - EccMemory        SECDED on RF/shared/global (AVF_MEM -> 0)
//   - HardenUnit(k)    duplicate/residue-check one functional unit kind
//   - DuplicateAll     full instruction duplication (DMR) on the measured
//                      units — SDCs become detections
#pragma once

#include <vector>

#include "model/fit_model.hpp"

namespace gpurel::model {

struct Hardening {
  /// Enable SECDED over all memory levels.
  bool ecc_memory = false;
  /// Unit kinds protected by duplication/residue checks: their SDC AVF drops
  /// to zero (errors become detections, counted as DUE).
  std::vector<isa::UnitKind> hardened_units;
  /// Full duplication of every measured instruction: all instruction-term
  /// SDCs convert to detections.
  bool duplicate_all = false;
};

struct WhatIfResult {
  FitPrediction baseline;
  FitPrediction hardened;
  /// SDC FIT removed by the scheme (baseline - hardened).
  double sdc_removed = 0.0;
  /// Detection (DUE) FIT added by converting SDCs into detections.
  double due_added = 0.0;
  /// Fraction of the baseline SDC FIT eliminated.
  double sdc_reduction = 0.0;
};

/// Predict the FIT impact of a hardening scheme on a code.
WhatIfResult what_if(const FitInputs& inputs, const CodeObservables& code,
                     const Hardening& scheme, double scale = kModelScale);

}  // namespace gpurel::model
