// Beam-tuned fault simulation — the paper's concluding suggestion ("this
// data can be used to tune future fault simulation frameworks").
//
// A plain campaign weighs every reachable site equally, which misrepresents
// reality when units differ in sensitivity (an IMAD site on Kepler is ~6x
// more likely to be struck than an FADD site, Fig. 3). The tuned AVF
// re-weights each instruction kind's injected AVF by its *physical* fault
// rate — beam-measured unit FIT times the code's dynamic usage — yielding
// the failure probability profile a beam actually sees, from injection data
// alone.
#pragma once

#include "fault/campaign.hpp"
#include "model/fit_model.hpp"
#include "profile/profiler.hpp"

namespace gpurel::model {

struct TunedAvf {
  double sdc = 0.0;
  double due = 0.0;
  double masked = 0.0;
  /// Total physical weight covered by kinds the campaign measured (the
  /// remainder of the code's fault rate was not injectable).
  double covered_weight_fraction = 0.0;
};

/// Re-weight a campaign's per-kind AVFs by beam-measured unit sensitivities
/// and the code's dynamic mix.
TunedAvf beam_tuned_avf(const fault::CampaignResult& campaign,
                        const FitInputs& inputs,
                        const profile::CodeProfile& profile);

}  // namespace gpurel::model
