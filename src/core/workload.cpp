#include "core/workload.hpp"

#include <stdexcept>

namespace gpurel::core {

std::string_view precision_prefix(Precision p) {
  switch (p) {
    case Precision::Int32: return "";
    case Precision::Half: return "H";
    case Precision::Single: return "F";
    case Precision::Double: return "D";
  }
  return "";
}

std::string_view precision_name(Precision p) {
  switch (p) {
    case Precision::Int32: return "INT32";
    case Precision::Half: return "FP16";
    case Precision::Single: return "FP32";
    case Precision::Double: return "FP64";
  }
  return "?";
}

unsigned precision_bytes(Precision p) {
  switch (p) {
    case Precision::Int32: return 4;
    case Precision::Half: return 2;
    case Precision::Single: return 4;
    case Precision::Double: return 8;
  }
  return 4;
}

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Masked: return "Masked";
    case Outcome::Sdc: return "SDC";
    case Outcome::Due: return "DUE";
  }
  return "?";
}

std::string_view due_cause_name(DueCause c) {
  switch (c) {
    case DueCause::None: return "none";
    case DueCause::Hang: return "hang";
    case DueCause::LaunchFailure: return "launch_failure";
    case DueCause::Watchdog: return "watchdog";
    case DueCause::BarrierDeadlock: return "barrier_deadlock";
    case DueCause::Ecc: return "ecc";
    case DueCause::kCount: break;
  }
  return "?";
}

DueCause due_cause_of(sim::DueKind k) {
  switch (k) {
    case sim::DueKind::None: return DueCause::None;
    // Device exceptions abort the launch at the API boundary.
    case sim::DueKind::InvalidAddress:
    case sim::DueKind::MisalignedAddress:
    case sim::DueKind::IllegalInstruction:
      return DueCause::LaunchFailure;
    case sim::DueKind::Watchdog: return DueCause::Watchdog;
    case sim::DueKind::BarrierDeadlock: return DueCause::BarrierDeadlock;
    case sim::DueKind::EccDoubleBit: return DueCause::Ecc;
    // Hidden-resource strikes stop the device without an exception.
    case sim::DueKind::HiddenResource: return DueCause::Hang;
  }
  return DueCause::None;
}

TrialRunner::TrialRunner(sim::Device& dev, sim::SimObserver* obs,
                         std::uint64_t cycle_budget)
    : dev_(dev), obs_(obs), cycle_budget_(cycle_budget) {}

bool TrialRunner::launch(const sim::KernelLaunch& kl) {
  if (due()) return false;
  if (resume_ != nullptr && ordinal_ < resume_->launch_ordinal) {
    ++ordinal_;  // already part of the snapshot; stats preset via resume_from
    return true;
  }
  const std::uint64_t remaining =
      cycle_budget_ == 0 ? 0
                         : (stats_.cycles >= cycle_budget_
                                ? 1  // out of budget: next launch trips instantly
                                : cycle_budget_ - stats_.cycles);
  sim::ForkIO io;
  sim::ForkIO* fork = nullptr;
  if (resume_ != nullptr) {
    io.resume = resume_;
    io.delta = resume_delta_;
    fork = &io;
    resume_ = nullptr;  // suffix launches after this one run normally
  } else if (capture_marks_ != nullptr) {
    io.marks = capture_marks_;
    io.next_mark = capture_next_;
    io.lane_base = stats_.lane_instructions;
    io.out = capture_out_;
    fork = &io;
  }
  const std::size_t before =
      io.out != nullptr ? capture_out_->size() : 0;
  const unsigned ordinal = ordinal_++;
  const sim::LaunchStats st = dev_.launch(kl, obs_, remaining, ordinal, fork);
  if (io.out != nullptr) {
    capture_next_ = io.next_mark;
    // Stamp trial-level context on the snapshots this launch appended:
    // which launch was in flight and the stats merged before it started.
    for (std::size_t i = before; i < capture_out_->size(); ++i) {
      (*capture_out_)[i].launch_ordinal = ordinal;
      (*capture_out_)[i].prior = stats_;
    }
  }
  stats_.merge(st);
  return stats_.due == sim::DueKind::None;
}

void TrialRunner::enable_capture(const std::vector<std::uint64_t>* marks,
                                 std::vector<sim::Snapshot>* out) {
  capture_marks_ = marks;
  capture_out_ = out;
  capture_next_ = 0;
}

void TrialRunner::resume_from(const sim::Snapshot& snap, bool delta) {
  resume_ = &snap;
  resume_delta_ = delta;
  stats_ = snap.prior;
}

void TrialRunner::force_due(sim::DueKind kind) {
  if (stats_.due == sim::DueKind::None) stats_.due = kind;
}

std::string Workload::name() const {
  return std::string(precision_prefix(precision())) + base_name();
}

void Workload::register_output(std::uint32_t addr, std::uint32_t bytes) {
  outputs_.push_back({addr, bytes});
}

void Workload::register_program(const isa::Program* prog) {
  programs_.push_back(prog);
}

unsigned Workload::max_regs_per_thread() const {
  unsigned m = 0;
  for (const auto* p : programs_) m = std::max<unsigned>(m, p->regs_per_thread());
  return m;
}

std::uint32_t Workload::max_shared_bytes() const {
  std::uint32_t m = max_dynamic_shared_;
  for (const auto* p : programs_) m = std::max(m, p->shared_bytes());
  return m;
}

const sim::LaunchStats& Workload::golden_stats() const {
  if (!prepared_) throw std::logic_error("Workload::golden_stats before prepare()");
  return golden_stats_;
}

void Workload::prepare(sim::Device& dev) {
  if (prepared_) return;
  build_programs();
  if (programs_.empty())
    throw std::logic_error(name() + ": build_programs registered no kernels");

  dev.reset();
  outputs_.clear();
  setup(dev);
  TrialRunner runner(dev, nullptr, /*cycle_budget=*/0);
  execute(dev, runner);
  if (runner.due())
    throw std::runtime_error(name() + ": fault-free reference trial raised DUE: " +
                             std::string(sim::due_kind_name(runner.stats().due)));
  golden_stats_ = runner.stats();
  golden_stats_.finalize(config_.gpu.max_warps_per_sm);
  capture_golden(dev);
  // Budget: generous multiple of the clean runtime so fault-lengthened but
  // converging runs finish, while true hangs trip quickly.
  watchdog_budget_ = golden_stats_.cycles * 20 + 100000;
  prepared_ = true;

  // The reference outputs must verify against themselves.
  if (!verify(dev))
    throw std::logic_error(name() + ": golden outputs fail self-verification");
}

void Workload::capture_golden(sim::Device& dev) {
  golden_.clear();
  golden_.reserve(outputs_.size());
  for (const auto& region : outputs_) {
    std::vector<std::uint8_t> bytes(region.bytes);
    dev.memory().read_bytes(region.addr, bytes);
    golden_.push_back(std::move(bytes));
  }
}

Workload::OutputGeometry Workload::output_geometry() const {
  OutputGeometry g;
  g.elem_bytes = precision_bytes(precision());
  std::uint64_t total = 0;
  for (const auto& region : outputs_) total += region.bytes;
  g.cols = total / g.elem_bytes;
  return g;
}

std::vector<std::uint64_t> Workload::corrupted_elements(sim::Device& dev) const {
  const unsigned elem = std::max(1u, output_geometry().elem_bytes);
  std::vector<std::uint64_t> bad;
  std::uint64_t base = 0;  // element offset of the current region
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    std::vector<std::uint8_t> bytes(outputs_[i].bytes);
    dev.memory().read_bytes(outputs_[i].addr, bytes);
    const std::vector<std::uint8_t>& gold = golden_[i];
    const std::size_t n = std::min(bytes.size(), gold.size());
    for (std::size_t b = 0; b < n; b += elem) {
      for (std::size_t k = b; k < std::min(n, b + elem); ++k) {
        if (bytes[k] != gold[k]) {
          bad.push_back(base + b / elem);
          break;
        }
      }
    }
    base += outputs_[i].bytes / elem;
  }
  return bad;
}

bool Workload::verify(sim::Device& dev) {
  if (outputs_.empty())
    throw std::logic_error(name() + ": no output regions registered and verify() "
                                    "not overridden");
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    std::vector<std::uint8_t> bytes(outputs_[i].bytes);
    dev.memory().read_bytes(outputs_[i].addr, bytes);
    if (bytes != golden_[i]) return false;
  }
  return true;
}

TrialResult Workload::run_trial(sim::Device& dev, sim::SimObserver* obs) {
  if (!prepared_) throw std::logic_error(name() + ": run_trial before prepare()");
  fork_resident_ = nullptr;  // reset() below disarms dirty tracking
  dev.reset();
  outputs_.clear();
  setup(dev);
  TrialRunner runner(dev, obs, watchdog_budget_);
  execute(dev, runner);
  return classify(dev, runner);
}

void Workload::capture_prefix(sim::Device& dev,
                              const std::vector<std::uint64_t>& marks,
                              std::vector<sim::Snapshot>& out) {
  if (!prepared_)
    throw std::logic_error(name() + ": capture_prefix before prepare()");
  if (!fork_safe())
    throw std::logic_error(name() + ": capture_prefix on a workload that is "
                                    "not fork-safe");
  fork_resident_ = nullptr;
  dev.reset();
  outputs_.clear();
  setup(dev);
  TrialRunner runner(dev, nullptr, watchdog_budget_);
  runner.enable_capture(&marks, &out);
  execute(dev, runner);
  if (runner.due())
    throw std::runtime_error(name() + ": fault-free capture run raised DUE: " +
                             std::string(sim::due_kind_name(runner.stats().due)));
  if (out.size() != marks.size())
    throw std::logic_error(name() + ": capture run missed snapshot marks");
}

TrialResult Workload::run_trial_forked(sim::Device& dev,
                                       const sim::Snapshot& snap,
                                       sim::SimObserver* obs, bool delta) {
  if (!prepared_)
    throw std::logic_error(name() + ": run_trial_forked before prepare()");
  if (!fork_safe())
    throw std::logic_error(name() + ": run_trial_forked on a workload that is "
                                    "not fork-safe");
  // Delta fast path: the previous trial on this device forked from this very
  // snapshot with tracking armed, so memory differs from the snapshot image
  // only on tracked dirty pages, layout included. Copy those back and skip
  // reset + setup entirely (registered outputs and member addresses are
  // unchanged — allocation is deterministic and nothing was reset).
  if (delta && fork_resident_ == &snap && dev.memory().dirty_tracking() &&
      dev.memory().allocated_top() == snap.memory_top) {
    last_restore_bytes_ =
        dev.memory().restore_allocated_delta(snap.memory_top, snap.memory);
  } else {
    fork_resident_ = nullptr;
    dev.reset();
    outputs_.clear();
    setup(dev);
    // Bump allocation is deterministic, so a fresh setup() reproduces the
    // capture run's layout; the snapshot then supplies the bytes.
    if (dev.memory().allocated_top() != snap.memory_top)
      throw std::logic_error(name() + ": snapshot memory layout mismatch");
    dev.memory().restore_allocated(snap.memory_top, snap.memory);
    last_restore_bytes_ = snap.memory.size();
    if (delta) {
      dev.memory().set_dirty_tracking(true);
      fork_resident_ = &snap;
    }
  }
  TrialRunner runner(dev, obs, watchdog_budget_);
  runner.resume_from(snap, delta);
  execute(dev, runner);
  return classify(dev, runner);
}

TrialResult Workload::classify(sim::Device& dev, TrialRunner& runner) {
  TrialResult result;
  result.stats = runner.stats();
  result.stats.finalize(config_.gpu.max_warps_per_sm);
  if (runner.due()) {
    result.outcome = Outcome::Due;
    result.due = result.stats.due;
    result.cause = due_cause_of(result.due);
  } else {
    result.outcome = verify(dev) ? Outcome::Masked : Outcome::Sdc;
  }
  return result;
}

}  // namespace gpurel::core
