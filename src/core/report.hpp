// Human-readable reports over Study results: the library-level rendering
// used by the reliability_report example and available to downstream tools
// (text or CSV, stable field ordering for scripting).
#pragma once

#include <ostream>
#include <string>

#include "core/study.hpp"

namespace gpurel::core {

struct ReportOptions {
  bool include_profile = true;
  bool include_avf = true;
  bool include_beam = true;
  bool include_prediction = true;
  bool csv = false;
  /// Per-PC hotspot rows shown under the profile table (0 disables).
  unsigned hotspot_top_n = 5;
};

/// Render one code's full evaluation.
void write_code_report(std::ostream& os, const Study::CodeEvaluation& ev,
                       const ReportOptions& options = {});

/// Render the microbenchmark characterization (Fig. 3 data).
void write_micro_report(std::ostream& os,
                        const std::vector<Study::MicroCharacterization>& micro,
                        bool csv = false);

/// One-line verdict for a prediction vs a beam measurement, in the paper's
/// signed-ratio language ("within 5x", "underestimated Nx", ...).
std::string prediction_verdict(double beam_fit, double predicted_fit);

}  // namespace gpurel::core
