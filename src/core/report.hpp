// Reports over Study results: the human-readable rendering (text or CSV,
// stable field ordering for scripting) used by the reliability_report
// example, plus a machine-readable JSON form. The JSON documents carry a
// top-level `schema_version` (= job::kResultSchemaVersion) and embed
// campaign/beam results through the job-layer serializers — one serialized
// layout per engine type across reports, JobResult files, and the cache.
#pragma once

#include <ostream>
#include <string>

#include "common/json.hpp"
#include "core/study.hpp"

namespace gpurel::core {

struct ReportOptions {
  bool include_profile = true;
  bool include_avf = true;
  bool include_beam = true;
  bool include_prediction = true;
  /// Fault-propagation tables, shown when a campaign carries a
  /// PropagationReport (StudyConfig::propagation). Text reports only.
  bool include_propagation = true;
  bool csv = false;
  /// Per-PC hotspot rows shown under the profile table (0 disables).
  unsigned hotspot_top_n = 5;
};

/// Render one code's full evaluation.
void write_code_report(std::ostream& os, const Study::CodeEvaluation& ev,
                       const ReportOptions& options = {});

/// Render the microbenchmark characterization (Fig. 3 data).
void write_micro_report(std::ostream& os,
                        const std::vector<Study::MicroCharacterization>& micro,
                        bool csv = false);

/// One-line verdict for a prediction vs a beam measurement, in the paper's
/// signed-ratio language ("within 5x", "underestimated Nx", ...).
std::string prediction_verdict(double beam_fit, double predicted_fit);

/// Machine-readable evaluation document (schema_version, profile summary,
/// campaign/beam results via job::*_to_json, Eq. 1-4 predictions).
json::Value code_report_json(const Study::CodeEvaluation& ev);

/// Machine-readable microbenchmark characterization document.
json::Value micro_report_json(
    const std::vector<Study::MicroCharacterization>& micro);

}  // namespace gpurel::core
