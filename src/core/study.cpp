#include "core/study.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/telemetry.hpp"
#include "job/runner.hpp"
#include "obs/trace.hpp"

namespace gpurel::core {

using isa::UnitKind;
using kernels::CatalogEntry;

namespace {

/// Trace track for Study stage spans, away from the worker tids (0..N).
constexpr int kStudyTid = 1000;

/// Which functional unit a micro catalog entry characterizes.
UnitKind micro_unit_kind(const CatalogEntry& e) {
  const bool h = e.precision == Precision::Half;
  const bool f = e.precision == Precision::Single;
  const bool d = e.precision == Precision::Double;
  if (e.base == "ADD") return h ? UnitKind::HADD : f ? UnitKind::FADD
                               : d ? UnitKind::DADD : UnitKind::IADD;
  if (e.base == "MUL") return h ? UnitKind::HMUL : f ? UnitKind::FMUL
                               : d ? UnitKind::DMUL : UnitKind::IMUL;
  if (e.base == "FMA" || e.base == "MAD")
    return h ? UnitKind::HFMA : f ? UnitKind::FFMA
           : d ? UnitKind::DFMA : UnitKind::IMAD;
  if (e.base == "MMA") return h ? UnitKind::MMA_H : UnitKind::MMA_F;
  if (e.base == "LDST") return UnitKind::LDST;
  return UnitKind::OTHER;
}

/// Single-precision stand-in for kinds NVBitFI cannot inject (FP16 paths).
UnitKind injectable_counterpart(UnitKind k) {
  switch (k) {
    case UnitKind::HADD: return UnitKind::FADD;
    case UnitKind::HMUL: return UnitKind::FMUL;
    case UnitKind::HFMA: return UnitKind::FFMA;
    case UnitKind::MMA_H: return UnitKind::MMA_F;
    default: return k;
  }
}

}  // namespace

Study::Study(arch::GpuConfig gpu, StudyConfig config)
    : gpu_(std::move(gpu)),
      config_(config),
      db_(beam::CrossSectionDb::for_arch(gpu_.arch)) {}

WorkloadConfig Study::workload_config(double scale,
                                      isa::CompilerProfile profile) const {
  return {gpu_, profile, config_.seed ^ 0x5eed, scale};
}

job::RunOptions Study::run_options() const {
  job::RunOptions opts;
  opts.workers = config_.workers;
  opts.context = config_.context();
  opts.cache_dir = config_.cache_dir;
  return opts;
}

std::vector<CatalogEntry> Study::app_catalog() const {
  return gpu_.arch == arch::Architecture::Kepler ? kernels::kepler_app_catalog()
                                                 : kernels::volta_app_catalog();
}

std::vector<CatalogEntry> Study::micro_catalog() const {
  return gpu_.arch == arch::Architecture::Kepler
             ? kernels::kepler_micro_catalog()
             : kernels::volta_micro_catalog();
}

const std::vector<Study::MicroCharacterization>& Study::microbenchmarks() {
  if (micro_) return *micro_;
  micro_.emplace();

  telemetry::Sink* sink = telemetry::resolve(config_.telemetry);
  const telemetry::Timer stage_timer;

  auto catalog = micro_catalog();
  // The model needs the LDST unit even on devices whose Fig. 3 set omits it.
  bool has_ldst = false;
  for (const auto& e : catalog) has_ldst |= e.base == "LDST";
  if (!has_ldst) catalog.push_back({"LDST", Precision::Int32});

  auto nvbitfi = fault::make_injector("NVBitFI");

  for (const auto& entry : catalog) {
    MicroCharacterization mc;
    mc.entry = entry;
    mc.name = kernels::entry_name(entry);
    mc.kind = micro_unit_kind(entry);
    mc.is_rf = entry.base == "RF";
    if (config_.progress)
      std::fprintf(stderr, "[study] stage 1: characterizing %s\n",
                   mc.name.c_str());
    const telemetry::Timer micro_timer;

    const auto factory = kernels::workload_factory(
        entry.base, entry.precision, workload_config(config_.micro_scale,
                                                     isa::CompilerProfile::Cuda10));
    beam::BeamConfig bc;
    bc.runs = config_.micro_beam_runs;
    bc.seed = config_.seed * 7919 + std::hash<std::string>{}(mc.name);
    bc.workers = config_.workers;
    bc.telemetry = config_.telemetry;
    bc.trace = config_.trace;
    // The paper runs the arithmetic benches with ECC on (they use almost no
    // memory); the RF bench needs ECC off to observe storage upsets, and
    // LDST is additionally measured with ECC off to expose device memory.
    bc.ecc = !mc.is_rf;
    mc.beam = beam::run_beam(db_, factory, bc);

    if (mc.is_rf) {
      auto w = factory();
      sim::Device dev(gpu_);
      w->prepare(dev);
      const auto exp = beam::compute_exposure(*w, dev.memory().allocated_bits());
      mc.exposed_bits =
          exp.trial_cycles > 0 ? exp.rf_bit_cycles / exp.trial_cycles : 0.0;
    } else {
      // Microbenchmark AVF by injection into its own unit (NVBitFI; FP16
      // kinds borrow the single-precision result below, as the tool cannot
      // touch half instructions).
      const UnitKind inj_kind = injectable_counterpart(mc.kind);
      if (inj_kind == mc.kind) {
        fault::CampaignConfig cc;
        cc.injections_per_kind = config_.micro_injections_per_kind;
        cc.seed = config_.seed * 31 + std::hash<std::string>{}(mc.name);
        cc.workers = config_.workers;
        cc.telemetry = config_.telemetry;
        cc.trace = config_.trace;
        const auto r = fault::run_campaign(*nvbitfi, factory, cc);
        const auto& ks = r.kind(mc.kind);
        if (ks.counts.total() > 0)
          mc.micro_avf = ks.counts.avf_sdc() + ks.counts.avf_due();
      } else {
        mc.micro_avf = 0.0;  // filled from the counterpart when building inputs
      }
    }
    if (sink != nullptr)
      sink->emit("study_micro", {{"name", mc.name},
                                 {"wall_ms", micro_timer.elapsed_ms()}});
    micro_->push_back(std::move(mc));
  }
  if (sink != nullptr)
    sink->emit("study_stage", {{"stage", 1},
                               {"name", "micro_characterization"},
                               {"wall_ms", stage_timer.elapsed_ms()}});
  if (obs::TraceWriter* trace = obs::resolve_trace(config_.trace)) {
    const double ms = stage_timer.elapsed_ms();
    trace->name_process(obs::kWallPid, "gpurel runtime (wall clock)");
    trace->name_thread(obs::kWallPid, kStudyTid, "study stages");
    trace->complete("micro_characterization", "study", obs::kWallPid,
                    kStudyTid, trace->now_us() - ms * 1000.0, ms * 1000.0,
                    {{"stage", 1}});
  }
  return *micro_;
}

const model::FitInputs& Study::fit_inputs() {
  if (inputs_) return *inputs_;
  const auto& micro = microbenchmarks();  // stage 1 time billed separately

  telemetry::Sink* sink = telemetry::resolve(config_.telemetry);
  const telemetry::Timer stage_timer;
  inputs_.emplace();
  model::FitInputs& in = *inputs_;
  const MicroCharacterization* ldst = nullptr;

  for (const auto& mc : micro) {
    if (mc.is_rf) {
      if (mc.exposed_bits > 0) {
        in.sram_bit_fit_sdc = mc.beam.fit_sdc / mc.exposed_bits;
        in.sram_bit_fit_due = mc.beam.fit_due / mc.exposed_bits;
      }
      continue;
    }
    auto& uf = in.unit(mc.kind);
    uf.fit_sdc = mc.beam.fit_sdc;
    uf.fit_due = mc.beam.fit_due;
    uf.micro_avf = mc.micro_avf;
    uf.measured = true;
    if (mc.kind == UnitKind::LDST) ldst = &mc;
  }
  // FP16 kinds that NVBitFI cannot inject borrow the FP32 masking estimate.
  for (UnitKind k : {UnitKind::HADD, UnitKind::HMUL, UnitKind::HFMA,
                     UnitKind::MMA_H}) {
    auto& uf = in.unit(k);
    if (uf.measured && uf.micro_avf <= 0.0)
      uf.micro_avf = in.unit(injectable_counterpart(k)).micro_avf;
  }

  // Device-memory per-bit rate: LDST with ECC off, minus its ECC-on (logic
  // only) rate, spread over the exposed buffer bits.
  if (ldst != nullptr) {
    const auto factory = kernels::workload_factory(
        "LDST", Precision::Int32,
        workload_config(config_.micro_scale, isa::CompilerProfile::Cuda10));
    beam::BeamConfig bc;
    bc.runs = config_.micro_beam_runs;
    bc.seed = config_.seed * 104729;
    bc.workers = config_.workers;
    bc.telemetry = config_.telemetry;
    bc.trace = config_.trace;
    bc.ecc = false;
    const auto off = beam::run_beam(db_, factory, bc);
    auto w = factory();
    sim::Device dev(gpu_);
    w->prepare(dev);
    const double bits = static_cast<double>(dev.memory().allocated_bits());
    if (bits > 0) {
      in.dram_bit_fit_sdc =
          std::max(0.0, off.fit_sdc - ldst->beam.fit_sdc) / bits;
      in.dram_bit_fit_due =
          std::max(0.0, off.fit_due - ldst->beam.fit_due) / bits;
    }
  }
  if (sink != nullptr)
    sink->emit("study_stage", {{"stage", 1},
                               {"name", "fit_inputs"},
                               {"wall_ms", stage_timer.elapsed_ms()}});
  return *inputs_;
}

std::optional<fault::CampaignResult> Study::run_injection(
    const fault::Injector& injector, const CatalogEntry& entry, bool aux_modes,
    unsigned injections_per_kind, bool* substituted) {
  if (substituted != nullptr) *substituted = false;

  // Probe instrumentability on this device.
  auto probe = kernels::make_workload(
      entry.base, entry.precision,
      workload_config(config_.app_scale, injector.profile()));
  arch::GpuConfig target_gpu = gpu_;
  if (!injector.can_instrument(*probe, gpu_)) {
    // The paper's substitution: Kepler library codes take the NVBitFI AVF
    // measured on Volta. Anything else is genuinely not measurable.
    const bool library_on_kepler =
        probe->uses_library() && gpu_.arch == arch::Architecture::Kepler &&
        injector.name() == "NVBitFI";
    if (!library_on_kepler) return std::nullopt;
    target_gpu = arch::GpuConfig::volta_v100(gpu_.sm_count);
    if (substituted != nullptr) *substituted = true;
  }

  // Route through the job layer: an identical spec was possibly already
  // computed (by a previous Study, a sharded gpurel_jobs fan-out, or an
  // earlier run of this process) and is then served from the cache
  // bit-identically; per-trial seeding guarantees the recompute path matches.
  fault::InjectionBudget budget;
  budget.injections_per_kind = injections_per_kind;
  if (aux_modes && injector.supports(fault::FaultModel::RegisterFile)) {
    budget.rf_injections = config_.rf_injections;
    budget.pred_injections = config_.pred_injections;
    budget.ia_injections = config_.ia_injections;
    budget.store_value_injections = config_.store_value_injections;
    budget.store_addr_injections = config_.store_addr_injections;
  } else {
    budget.rf_injections = 0;
    budget.pred_injections = 0;
    budget.ia_injections = 0;
    budget.store_value_injections = 0;
    budget.store_addr_injections = 0;
  }
  // Micro-architectural strata: granted only to injectors that reach the
  // class, so architectural (SASSIFI/NVBitFI) specs keep their budgets — and
  // cache keys — byte-identical.
  if (injector.reaches(fault::SiteClass::Scheduler))
    budget.sched_injections = config_.sched_injections;
  if (injector.reaches(fault::SiteClass::Scoreboard))
    budget.scoreboard_injections = config_.scoreboard_injections;
  if (injector.reaches(fault::SiteClass::CtaBookkeeping))
    budget.cta_injections = config_.cta_injections;
  if (injector.reaches(fault::SiteClass::WarpControl))
    budget.warp_control_injections = config_.warp_control_injections;
  const std::uint64_t seed =
      config_.seed * 131071 +
      std::hash<std::string>{}(injector.name() + entry.base) +
      static_cast<std::uint64_t>(entry.precision);
  job::JobSpec spec =
      job::campaign_spec(target_gpu, entry, injector.name(), budget, seed,
                         config_.seed ^ 0x5eed, config_.app_scale);
  spec.propagation = config_.propagation;
  return std::move(job::run_job(spec, run_options()).campaign);
}

model::FitPrediction Study::make_prediction(const CatalogEntry& entry,
                                            const profile::CodeProfile& prof,
                                            const fault::CampaignResult& avf,
                                            bool ecc) {
  // Memory exposure of the (Cuda10) beam binary.
  auto w = kernels::make_workload(
      entry.base, entry.precision,
      workload_config(config_.app_scale, isa::CompilerProfile::Cuda10));
  sim::Device dev(gpu_);
  w->prepare(dev);
  const auto exp = beam::compute_exposure(*w, dev.memory().allocated_bits());

  model::CodeObservables obs;
  obs.profile = prof;
  obs.avf = &avf;
  obs.ecc = ecc;
  if (exp.trial_cycles > 0) {
    obs.rf_bits = exp.rf_bit_cycles / exp.trial_cycles;
    obs.shared_bits = exp.shared_bit_cycles / exp.trial_cycles;
  }
  obs.global_bits = static_cast<double>(dev.memory().allocated_bits());
  if (avf.rf.total() > 0) {
    obs.mem_avf_sdc = avf.rf.avf_sdc();
    obs.mem_avf_due = avf.rf.avf_due();
  } else {
    obs.mem_avf_sdc = avf.overall_avf_sdc();
    obs.mem_avf_due = avf.overall_avf_due();
  }
  return model::predict_fit(fit_inputs(), obs);
}

Study::CodeEvaluation Study::evaluate(const CatalogEntry& entry, EvalParts parts) {
  CodeEvaluation ev;
  ev.entry = entry;
  ev.name = kernels::entry_name(entry);

  telemetry::Sink* sink = telemetry::resolve(config_.telemetry);
  obs::TraceWriter* trace = obs::resolve_trace(config_.trace);
  if (trace != nullptr) {
    trace->name_process(obs::kWallPid, "gpurel runtime (wall clock)");
    trace->name_thread(obs::kWallPid, kStudyTid, "study stages");
  }
  telemetry::Timer stage_timer;
  auto stage_done = [&](int stage, const char* name) {
    const double ms = stage_timer.elapsed_ms();
    if (config_.progress)
      std::fprintf(stderr, "[study] stage %d: %s done for %s\n", stage, name,
                   ev.name.c_str());
    if (sink != nullptr)
      sink->emit("study_stage", {{"stage", stage},
                                 {"name", name},
                                 {"code", ev.name},
                                 {"wall_ms", ms}});
    if (trace != nullptr)
      trace->complete(std::string(name) + " " + ev.name, "study",
                      obs::kWallPid, kStudyTid, trace->now_us() - ms * 1000.0,
                      ms * 1000.0, {{"stage", stage}, {"code", ev.name}});
    stage_timer.reset();
  };

  // Profiles per toolchain era. The deep-profiled trial also renders the
  // simulated-time timeline when tracing is on.
  {
    auto w = kernels::make_workload(
        entry.base, entry.precision,
        workload_config(config_.app_scale, isa::CompilerProfile::Cuda10));
    sim::Device dev(gpu_);
    ev.profile = profile::profile_workload(*w, dev, trace);
  }
  auto sassifi = fault::make_injector("SASSIFI");
  auto nvbitfi = fault::make_injector("NVBitFI");
  {
    auto probe = kernels::make_workload(
        entry.base, entry.precision,
        workload_config(config_.app_scale, isa::CompilerProfile::Cuda7));
    if (sassifi->can_instrument(*probe, gpu_)) {
      sim::Device dev(gpu_);
      ev.profile_cuda7 = profile::profile_workload(*probe, dev);
    }
  }
  stage_done(2, "profile");

  // Injection campaigns.
  if (parts.injections || parts.predictions) {
    ev.sassifi = run_injection(*sassifi, entry, /*aux_modes=*/true,
                               config_.injections_per_kind, nullptr);
    ev.nvbitfi = run_injection(*nvbitfi, entry, /*aux_modes=*/false,
                               config_.injections_per_kind,
                               &ev.nvbitfi_substituted);
    // NVBitFI cannot inject FP16 instructions: graft the single-precision
    // variant's per-kind AVFs onto the half kinds (paper §VII-A — "we use
    // the float functional units AVF also for the half precision").
    if (ev.nvbitfi && entry.precision == Precision::Half) {
      const CatalogEntry single{entry.base, Precision::Single};
      bool sub2 = false;
      const auto single_campaign = run_injection(
          *nvbitfi, single, /*aux_modes=*/false, config_.injections_per_kind,
          &sub2);
      if (single_campaign) {
        static constexpr std::pair<UnitKind, UnitKind> kHalfMap[] = {
            {UnitKind::HADD, UnitKind::FADD},
            {UnitKind::HMUL, UnitKind::FMUL},
            {UnitKind::HFMA, UnitKind::FFMA},
            {UnitKind::MMA_H, UnitKind::MMA_F},
        };
        for (const auto& [half, single_kind] : kHalfMap) {
          auto& dst = ev.nvbitfi->per_kind[static_cast<std::size_t>(half)];
          const auto& src =
              single_campaign->per_kind[static_cast<std::size_t>(single_kind)];
          // The tool saw no injectable FP16 sites at all (dynamic_sites is
          // 0 for half kinds); the graft feeds the Eq. 2 prediction only.
          if (dst.counts.total() == 0 && src.counts.total() > 0) {
            dst.counts = src.counts;
            ev.half_avf_substituted = true;
          }
        }
      }
    }
    // The MicroArch campaign strikes the scheduler / scoreboard /
    // CTA-bookkeeping / warp-control state neither tool reaches (§V). It has
    // no instruction-output sites, so the per-kind budget is zero; the four
    // micro-architectural strata come from the StudyConfig knobs above.
    auto march = fault::make_injector("MicroArch");
    ev.microarch = run_injection(*march, entry, /*aux_modes=*/false,
                                 /*injections_per_kind=*/0, nullptr);
    stage_done(2, "injections");
  }

  // Beam experiments, ECC on and off — through the cache-aware job layer
  // (bit-identical to a direct run_beam; see run_injection).
  if (parts.beam) {
    const std::uint64_t seed =
        config_.seed * 257 + std::hash<std::string>{}(ev.name);
    auto beam_job = [&](bool ecc, std::uint64_t s) {
      const job::JobSpec spec = job::beam_spec(
          gpu_, entry, ecc, beam::BeamMode::Accelerated, config_.app_beam_runs,
          /*flux_scale=*/1.0, s, config_.seed ^ 0x5eed, config_.app_scale);
      return *job::run_job(spec, run_options()).beam;
    };
    ev.beam_ecc_on = beam_job(true, seed);
    ev.beam_ecc_off = beam_job(false, seed + 1);
    stage_done(2, "beam");
  }

  // Predictions (Eq. 1-4) per injector and ECC setting.
  if (parts.predictions) {
    // The FIT inputs are built lazily and bill their own stage-1 events;
    // force them now and restart the clock so the stage-3 window below
    // covers only the predictions themselves.
    fit_inputs();
    stage_timer.reset();
    if (ev.sassifi) {
      const auto& prof = ev.profile_cuda7 ? *ev.profile_cuda7 : ev.profile;
      ev.pred_sassifi_on = make_prediction(entry, prof, *ev.sassifi, true);
      ev.pred_sassifi_off = make_prediction(entry, prof, *ev.sassifi, false);
    }
    if (ev.nvbitfi) {
      ev.pred_nvbitfi_on = make_prediction(entry, ev.profile, *ev.nvbitfi, true);
      ev.pred_nvbitfi_off = make_prediction(entry, ev.profile, *ev.nvbitfi, false);
    }
    if (parts.beam) ev.reach = reach_sweep(ev);
    stage_done(3, "predictions");
  }
  return ev;
}

std::optional<Study::ReachSweep> Study::reach_sweep(const CodeEvaluation& ev) {
  // Level 0 anchors on the best architectural prediction available (NVBitFI
  // era preferred: it matches the beam binary's compiler profile).
  const model::FitPrediction* base = nullptr;
  const char* base_name = nullptr;
  if (ev.pred_nvbitfi_on) {
    base = &*ev.pred_nvbitfi_on;
    base_name = "NVBitFI/ECC on";
  } else if (ev.pred_sassifi_on) {
    base = &*ev.pred_sassifi_on;
    base_name = "SASSIFI/ECC on";
  }
  if (base == nullptr || !ev.microarch) return std::nullopt;
  const fault::CampaignResult& ma = *ev.microarch;
  const std::uint64_t total_sites = ma.scheduler_sites + ma.scoreboard_sites +
                                    ma.cta_sites + ma.warp_control_sites;
  if (total_sites == 0) return std::nullopt;

  ReachSweep sweep;
  sweep.base = base_name;
  sweep.beam_due = ev.beam_ecc_on.fit_due;
  // The beam DUE FIT the architectural method cannot see: events whose
  // strike landed on a hidden (non-architectural) resource.
  const auto& hidden = ev.beam_ecc_on.by_target[static_cast<std::size_t>(
      beam::StrikeTarget::Hidden)];
  sweep.hidden_due = ev.beam_ecc_on.fit_of(hidden.due);

  double cum = base->due;
  sweep.levels.push_back({"architectural", std::nullopt, cum});
  // Each level grants one more class: its contribution is the hidden DUE
  // rate, split over the classes by static-site share, derated by the
  // class's MicroArch-measured DUE AVF. Non-negative terms keep the sweep
  // monotone, and the full-reach level stays <= base + hidden_due.
  const struct {
    const char* name;
    fault::SiteClass cls;
    std::uint64_t sites;
    const fault::OutcomeCounts* counts;
  } grants[] = {
      {"+scheduler", fault::SiteClass::Scheduler, ma.scheduler_sites,
       &ma.scheduler},
      {"+scoreboards", fault::SiteClass::Scoreboard, ma.scoreboard_sites,
       &ma.scoreboard},
      {"+cta-bookkeeping", fault::SiteClass::CtaBookkeeping, ma.cta_sites,
       &ma.cta},
      {"+warp-control", fault::SiteClass::WarpControl, ma.warp_control_sites,
       &ma.warp_control},
  };
  for (const auto& g : grants) {
    const double share = static_cast<double>(g.sites) /
                         static_cast<double>(total_sites);
    cum += sweep.hidden_due * share * g.counts->avf_due();
    sweep.levels.push_back({g.name, g.cls, cum});
  }
  return sweep;
}

}  // namespace gpurel::core
