#include "core/report.hpp"

#include <cmath>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "job/serialize.hpp"

namespace gpurel::core {

std::string prediction_verdict(double beam_fit, double predicted_fit) {
  const double r = signed_ratio(beam_fit, predicted_fit);
  if (r == 0.0) return "no events / no prediction";
  const double mag = ratio_magnitude(r);
  // Prose verdict for the human-readable report; the machine-readable ratio
  // goes through json::Value in the study export, so rounding here is fine.
  char buf[96];
  if (mag <= 5.0) {
    // gpurel-lint: allow(float-format) human-readable prose, not a result doc
    std::snprintf(buf, sizeof(buf), "within the paper's 5x band (%+.1fx)", r);
  } else if (r > 0) {
    // gpurel-lint: allow(float-format) human-readable prose, not a result doc
    std::snprintf(buf, sizeof(buf), "underestimated %.0fx", mag);
  } else {
    // gpurel-lint: allow(float-format) human-readable prose, not a result doc
    std::snprintf(buf, sizeof(buf), "overestimated %.0fx", mag);
  }
  return buf;
}

void write_code_report(std::ostream& os, const Study::CodeEvaluation& ev,
                       const ReportOptions& options) {
  os << "=== " << ev.name << " ===\n";
  if (options.include_profile) {
    Table t({"metric", "value"});
    t.set_align(1, Align::Right);
    t.row().cell("IPC").cell(ev.profile.ipc, 2);
    t.row().cell("achieved occupancy").cell(ev.profile.occupancy, 2);
    t.row().cell("phi (Eq. 4)").cell(ev.profile.phi(), 2);
    t.row().cell("registers/thread").cell_int(ev.profile.regs_per_thread);
    t.row().cell("shared bytes/block").cell_int(ev.profile.shared_bytes);
    for (std::size_t c = 0; c < static_cast<std::size_t>(isa::MixClass::kCount);
         ++c) {
      const auto cls = static_cast<isa::MixClass>(c);
      t.row()
          .cell("mix % " + std::string(isa::mix_class_name(cls)))
          .cell(100.0 * ev.profile.mix_of(cls), 1);
    }
    t.row().cell("active-lane fraction").cell(ev.profile.active_lane_fraction, 3);
    t.row().cell("SM imbalance (max/mean)").cell(ev.profile.sm_imbalance, 2);
    t.row()
        .cell("global bytes (ld+st)")
        .cell_int(static_cast<long long>(ev.profile.global_load_bytes +
                                         ev.profile.global_store_bytes));
    t.row()
        .cell("shared bytes (ld+st)")
        .cell_int(static_cast<long long>(ev.profile.shared_load_bytes +
                                         ev.profile.shared_store_bytes));
    if (options.csv) t.render_csv(os);
    else t.render_text(os);

    if (options.hotspot_top_n > 0 && !ev.profile.pc_hotspots.empty()) {
      Table h({"kernel", "pc", "instr", "warp execs", "share %", "lanes %"});
      h.set_align(3, Align::Right);
      const std::size_t n = std::min<std::size_t>(options.hotspot_top_n,
                                                  ev.profile.pc_hotspots.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto& hs = ev.profile.pc_hotspots[i];
        h.row()
            .cell(hs.program)
            .cell_int(static_cast<long long>(hs.pc))
            .cell(hs.mnemonic)
            .cell_int(static_cast<long long>(hs.warp_count))
            .cell(ev.profile.warp_instructions > 0
                      ? 100.0 * static_cast<double>(hs.warp_count) /
                            static_cast<double>(ev.profile.warp_instructions)
                      : 0.0,
                  1)
            .cell(100.0 * hs.lane_fraction, 1);
      }
      if (options.csv) h.render_csv(os);
      else h.render_text(os);
    }
  }
  if (options.include_avf) {
    Table t({"injector", "SDC AVF", "DUE AVF", "masked", "injections", "note"});
    auto add = [&](const char* name, const fault::CampaignResult& r,
                   const std::string& note) {
      t.row()
          .cell(name)
          .cell(r.overall_avf_sdc(), 3)
          .cell(r.overall_avf_due(), 3)
          .cell(r.overall_masked(), 3)
          .cell_int(static_cast<long long>(r.total_injections()))
          .cell(note);
    };
    if (ev.sassifi) add("SASSIFI", *ev.sassifi, "");
    if (ev.nvbitfi) {
      std::string note;
      if (ev.nvbitfi_substituted) note = "AVF from Volta (library code)";
      if (ev.half_avf_substituted)
        note += note.empty() ? "FP16 AVFs from FP32 variant"
                             : "; FP16 AVFs from FP32 variant";
      add("NVBitFI", *ev.nvbitfi, note);
    }
    if (ev.microarch)
      add("MicroArch", *ev.microarch, "simulator-only (hidden state)");
    if (!ev.sassifi && !ev.nvbitfi && !ev.microarch)
      os << "(not instrumentable)\n";
    else if (options.csv) t.render_csv(os);
    else t.render_text(os);

    // DUE-cause taxonomy (core::DueCause): how each campaign's DUEs
    // manifested. Campaigns without DUEs contribute no row.
    Table d({"injector", "hang", "launch fail", "watchdog", "barrier deadlock",
             "ecc"});
    auto add_causes = [&](const char* name, const fault::CampaignResult& r) {
      if (r.due_causes.total() == 0) return;
      d.row()
          .cell(name)
          .cell_int(static_cast<long long>(r.due_causes.hang))
          .cell_int(static_cast<long long>(r.due_causes.launch_failure))
          .cell_int(static_cast<long long>(r.due_causes.watchdog))
          .cell_int(static_cast<long long>(r.due_causes.barrier_deadlock))
          .cell_int(static_cast<long long>(r.due_causes.ecc));
    };
    if (ev.sassifi) add_causes("SASSIFI", *ev.sassifi);
    if (ev.nvbitfi) add_causes("NVBitFI", *ev.nvbitfi);
    if (ev.microarch) add_causes("MicroArch", *ev.microarch);
    if (d.num_rows() > 0) {
      if (options.csv) d.render_csv(os);
      else d.render_text(os);
    }
  }
  if (options.include_propagation) {
    // Only propagation-enabled campaigns carry a report (plain-text only:
    // the CSV form keeps its historical column set).
    auto add = [&](const char* name, const fault::CampaignResult& r) {
      if (!r.propagation.has_value() || options.csv) return;
      std::string text;
      obs::write_propagation_report(text, *r.propagation);
      os << name << " " << text;
    };
    if (ev.sassifi) add("SASSIFI", *ev.sassifi);
    if (ev.nvbitfi) add("NVBitFI", *ev.nvbitfi);
  }
  if (options.include_beam) {
    Table t({"ECC", "SDC FIT", "SDC 95% CI", "DUE FIT", "DUE 95% CI"});
    auto add = [&](const char* ecc, const beam::BeamResult& r) {
      t.row()
          .cell(ecc)
          .cell(format_sci(r.fit_sdc))
          .cell("[" + format_sci(r.fit_sdc_ci.lower) + ", " +
                format_sci(r.fit_sdc_ci.upper) + "]")
          .cell(format_sci(r.fit_due))
          .cell("[" + format_sci(r.fit_due_ci.lower) + ", " +
                format_sci(r.fit_due_ci.upper) + "]");
    };
    add("off", ev.beam_ecc_off);
    add("on", ev.beam_ecc_on);
    if (options.csv) t.render_csv(os);
    else t.render_text(os);
  }
  if (options.include_prediction) {
    Table t({"prediction", "SDC", "verdict", "DUE", "DUE verdict"});
    auto add = [&](const char* tag, const std::optional<model::FitPrediction>& p,
                   const beam::BeamResult& beam) {
      if (!p) return;
      t.row()
          .cell(tag)
          .cell(format_sci(p->sdc))
          .cell(prediction_verdict(beam.fit_sdc, p->sdc))
          .cell(format_sci(p->due))
          .cell(prediction_verdict(beam.fit_due, p->due));
    };
    add("SASSIFI/ECC off", ev.pred_sassifi_off, ev.beam_ecc_off);
    add("SASSIFI/ECC on", ev.pred_sassifi_on, ev.beam_ecc_on);
    add("NVBitFI/ECC off", ev.pred_nvbitfi_off, ev.beam_ecc_off);
    add("NVBitFI/ECC on", ev.pred_nvbitfi_on, ev.beam_ecc_on);
    if (t.num_rows() > 0) {
      if (options.csv) t.render_csv(os);
      else t.render_text(os);
    }

    // Injector-reach DUE sweep (§V): the predicted DUE FIT as the injector
    // is granted reach into one more micro-architectural class per level,
    // closing the gap toward the ECC-on beam measurement.
    if (ev.reach) {
      Table r({"reach", "predicted DUE", "verdict vs beam"});
      for (const auto& level : ev.reach->levels)
        r.row()
            .cell(level.name)
            .cell(format_sci(level.predicted_due))
            .cell(prediction_verdict(ev.reach->beam_due, level.predicted_due));
      r.row()
          .cell("beam (ECC on)")
          .cell(format_sci(ev.reach->beam_due))
          .cell("measured");
      if (options.csv) r.render_csv(os);
      else r.render_text(os);
    }
  }
}

json::Value code_report_json(const Study::CodeEvaluation& ev) {
  using json::Value;
  Value v = Value::object();
  v.set("schema_version", job::kResultSchemaVersion);
  v.set("type", "code_report");
  v.set("code", ev.name);
  {
    Value p = Value::object();
    p.set("ipc", ev.profile.ipc);
    p.set("occupancy", ev.profile.occupancy);
    p.set("phi", ev.profile.phi());
    p.set("regs_per_thread", ev.profile.regs_per_thread);
    p.set("shared_bytes", ev.profile.shared_bytes);
    p.set("active_lane_fraction", ev.profile.active_lane_fraction);
    p.set("sm_imbalance", ev.profile.sm_imbalance);
    v.set("profile", std::move(p));
  }
  v.set("sassifi", ev.sassifi ? job::campaign_result_to_json(*ev.sassifi)
                              : Value());
  v.set("nvbitfi", ev.nvbitfi ? job::campaign_result_to_json(*ev.nvbitfi)
                              : Value());
  v.set("microarch", ev.microarch ? job::campaign_result_to_json(*ev.microarch)
                                  : Value());
  v.set("nvbitfi_substituted", ev.nvbitfi_substituted);
  v.set("half_avf_substituted", ev.half_avf_substituted);
  {
    Value b = Value::object();
    b.set("ecc_on", job::beam_result_to_json(ev.beam_ecc_on));
    b.set("ecc_off", job::beam_result_to_json(ev.beam_ecc_off));
    v.set("beam", std::move(b));
  }
  {
    Value preds = Value::object();
    auto add = [&](const char* key,
                   const std::optional<model::FitPrediction>& p) {
      if (!p) {
        preds.set(key, Value());
        return;
      }
      Value e = Value::object();
      e.set("sdc", p->sdc);
      e.set("due", p->due);
      preds.set(key, std::move(e));
    };
    add("sassifi_ecc_on", ev.pred_sassifi_on);
    add("sassifi_ecc_off", ev.pred_sassifi_off);
    add("nvbitfi_ecc_on", ev.pred_nvbitfi_on);
    add("nvbitfi_ecc_off", ev.pred_nvbitfi_off);
    v.set("predictions", std::move(preds));
  }
  if (ev.reach) {
    Value r = Value::object();
    r.set("schema_version", kReachSweepSchemaVersion);
    r.set("base", ev.reach->base);
    r.set("beam_due", ev.reach->beam_due);
    r.set("hidden_due", ev.reach->hidden_due);
    Value levels = Value::array();
    for (const auto& level : ev.reach->levels) {
      Value e = Value::object();
      e.set("reach", level.name);
      if (level.granted)
        e.set("granted", fault::site_class_name(*level.granted));
      e.set("predicted_due", level.predicted_due);
      levels.push_back(std::move(e));
    }
    r.set("levels", std::move(levels));
    v.set("injector_reach", std::move(r));
  } else {
    v.set("injector_reach", Value());
  }
  return v;
}

json::Value micro_report_json(
    const std::vector<Study::MicroCharacterization>& micro) {
  using json::Value;
  Value v = Value::object();
  v.set("schema_version", job::kResultSchemaVersion);
  v.set("type", "micro_report");
  Value rows = Value::array();
  for (const auto& mc : micro) {
    Value e = Value::object();
    e.set("name", mc.name);
    e.set("unit", mc.is_rf ? std::string_view("RF")
                           : isa::unit_kind_name(mc.kind));
    e.set("micro_avf", mc.micro_avf);
    e.set("exposed_bits", mc.exposed_bits);
    e.set("beam", job::beam_result_to_json(mc.beam));
    rows.push_back(std::move(e));
  }
  v.set("benches", std::move(rows));
  return v;
}

void write_micro_report(std::ostream& os,
                        const std::vector<Study::MicroCharacterization>& micro,
                        bool csv) {
  Table t({"bench", "unit", "SDC FIT", "DUE FIT", "micro AVF", "runs"});
  for (const auto& mc : micro) {
    t.row()
        .cell(mc.name)
        .cell(mc.is_rf ? "RF" : std::string(isa::unit_kind_name(mc.kind)))
        .cell(format_sci(mc.beam.fit_sdc))
        .cell(format_sci(mc.beam.fit_due))
        .cell(mc.micro_avf, 2)
        .cell_int(static_cast<long long>(mc.beam.runs));
  }
  if (csv) t.render_csv(os);
  else t.render_text(os);
}

}  // namespace gpurel::core
