// Study: the paper's end-to-end methodology on one device.
//
//   stage 1  characterize the functional units and memories with beam
//            experiments on the synthetic microbenchmarks (§V / Fig. 3) and
//            measure each microbenchmark's own AVF by fault injection;
//   stage 2  for every code: profile it (Table I / Fig. 1), run the
//            applicable fault-injection campaigns (§VI / Fig. 4) — with the
//            paper's substitution of NVBitFI-on-Volta AVFs for Kepler
//            library codes — and measure its FIT under beam with ECC on and
//            off (Fig. 5);
//   stage 3  predict each code's FIT from stage 1 + profiling + AVFs
//            (Eqs. 1-4) and compare against the beam measurement (Fig. 6,
//            §VII-B DUE analysis).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "beam/experiment.hpp"
#include "fault/campaign.hpp"
#include "job/runner.hpp"
#include "kernels/registry.hpp"
#include "model/fit_model.hpp"
#include "profile/profiler.hpp"

namespace gpurel::core {

/// The injection budget (fault::InjectionBudget) and the observability
/// context (obs::RunContext: telemetry/trace/progress, propagated to every
/// campaign/beam run, with the usual GPUREL_TELEMETRY / GPUREL_TRACE env
/// fallbacks) are inherited — a Study's per-kind / aux-mode knobs are the
/// exact fields a CampaignConfig consumes, declared once.
struct StudyConfig : fault::InjectionBudget, obs::RunContext {
  StudyConfig() {
    // Study-scale defaults, smaller than a standalone campaign's.
    injections_per_kind = 60;
    rf_injections = 50;
    pred_injections = 30;
    ia_injections = 30;
    store_value_injections = 30;
    store_addr_injections = 30;
    // Micro-architectural strata (MicroArch injector only; run_injection
    // grants each stratum solely to injectors that reach its site class, so
    // SASSIFI/NVBitFI specs — and their cache hashes — are untouched).
    sched_injections = 24;
    scoreboard_injections = 24;
    cta_injections = 24;
    warp_control_injections = 24;
  }

  unsigned micro_beam_runs = 300;
  unsigned app_beam_runs = 150;
  unsigned micro_injections_per_kind = 40;
  unsigned workers = 1;
  std::uint64_t seed = 42;
  /// Size knob for the application workloads.
  double app_scale = 1.0;
  /// Size knob for the microbenchmarks (FIT estimates are size-invariant
  /// under conditional strike sampling, so these can be small).
  double micro_scale = 0.1;
  /// Content-addressed result cache directory for the injection campaigns
  /// and application beam runs (see job::ResultCache). Empty falls back to
  /// the GPUREL_CACHE=<dir> environment override; when neither is set,
  /// everything is recomputed. Results are bit-identical either way.
  std::string cache_dir;
  /// Attach the fault-propagation flight recorder to every injection
  /// campaign (obs::PropagationObserver). Outcomes and AVFs are unchanged;
  /// each CampaignResult additionally carries a PropagationReport, surfaced
  /// by core::report's propagation section. Note the flag is part of the
  /// JobSpec, so enabling it addresses a different cache entry.
  bool propagation = false;

  fault::InjectionBudget& budget() { return *this; }
  const fault::InjectionBudget& budget() const { return *this; }
  obs::RunContext& context() { return *this; }
  const obs::RunContext& context() const { return *this; }
};

/// Schema version of the injector-reach sweep section emitted by
/// core::code_report_json (independent of job::kResultSchemaVersion: the
/// sweep is a derived analysis, not an engine result).
inline constexpr int kReachSweepSchemaVersion = 1;

class Study {
 public:
  Study(arch::GpuConfig gpu, StudyConfig config);

  const arch::GpuConfig& gpu() const { return gpu_; }
  const StudyConfig& config() const { return config_; }

  // ---- Stage 1 -----------------------------------------------------------
  struct MicroCharacterization {
    kernels::CatalogEntry entry;
    std::string name;
    isa::UnitKind kind = isa::UnitKind::OTHER;  // OTHER for the RF benchmark
    bool is_rf = false;
    beam::BeamResult beam;   // ECC on for unit benches, off for RF
    double micro_avf = 1.0;  // injected AVF of the microbenchmark itself
    double exposed_bits = 0.0;  // RF: average resident register bits
  };

  /// Beam + injection characterization of every microbenchmark in the
  /// device's Fig. 3 catalog (cached after the first call).
  const std::vector<MicroCharacterization>& microbenchmarks();

  /// Eq. 1-4 inputs distilled from stage 1 (cached).
  const model::FitInputs& fit_inputs();

  // ---- Stage 2 + 3 -------------------------------------------------------
  /// One level of the injector-reach DUE sweep: the cumulative DUE-FIT
  /// prediction (ECC on) after granting the injector one more site class.
  struct ReachLevel {
    std::string name;  // "architectural", "+scheduler", ...
    /// Site class granted at this level; nullopt for the base level.
    std::optional<fault::SiteClass> granted;
    double predicted_due = 0.0;  // cumulative prediction, monotone in level
  };

  /// The §V DUE-gap analysis, quantified: level 0 is the architectural
  /// (SASSIFI/NVBitFI-class) Eq. 1-4 DUE prediction exactly as reported
  /// today; each further level adds the hidden-strike beam DUE FIT scaled by
  /// the granted class's static-site share and its MicroArch-measured DUE
  /// AVF. The prediction is non-decreasing in reach, closing toward the
  /// beam-measured DUE as the injector reaches more of the
  /// parallelism-management state.
  struct ReachSweep {
    std::string base;           // which prediction anchors level 0
    double beam_due = 0.0;      // measured DUE FIT, ECC on
    double hidden_due = 0.0;    // beam DUE FIT attributed to hidden strikes
    std::vector<ReachLevel> levels;
  };

  struct CodeEvaluation {
    kernels::CatalogEntry entry;
    std::string name;

    profile::CodeProfile profile;            // of the NVBitFI-era binary
    std::optional<profile::CodeProfile> profile_cuda7;  // SASSIFI-era binary

    std::optional<fault::CampaignResult> sassifi;
    std::optional<fault::CampaignResult> nvbitfi;
    /// Simulator-only MicroArch campaign over the scheduler / scoreboard /
    /// CTA-bookkeeping / warp-control site classes (§V DUE-gap analysis).
    std::optional<fault::CampaignResult> microarch;
    /// Kepler library code: the NVBitFI AVF was measured on Volta (§III-D).
    bool nvbitfi_substituted = false;
    /// Half-precision code: FP16 per-kind AVFs were grafted from the
    /// single-precision variant's campaign (NVBitFI cannot inject half
    /// instructions — the paper's §VII-A simplification, responsible for
    /// its HHotspot overestimation).
    bool half_avf_substituted = false;

    beam::BeamResult beam_ecc_on;
    beam::BeamResult beam_ecc_off;

    std::optional<model::FitPrediction> pred_sassifi_on, pred_sassifi_off;
    std::optional<model::FitPrediction> pred_nvbitfi_on, pred_nvbitfi_off;

    /// DUE-gap sweep over injector reach (see ReachSweep); present when the
    /// MicroArch campaign, an architectural prediction, and the ECC-on beam
    /// measurement are all available.
    std::optional<ReachSweep> reach;
  };

  /// Which stages of an evaluation to run (predictions need injections).
  struct EvalParts {
    bool injections = true;
    bool beam = true;
    bool predictions = true;
  };
  static constexpr EvalParts kAllParts{true, true, true};

  /// Full (or partial) evaluation of one catalog entry.
  CodeEvaluation evaluate(const kernels::CatalogEntry& entry,
                          EvalParts parts = kAllParts);

  /// Build the injector-reach sweep from an evaluation's MicroArch campaign,
  /// base architectural prediction, and ECC-on beam result; nullopt when any
  /// is missing. Pure function of the evaluation (exposed for tests and for
  /// callers assembling evaluations from cached job results).
  static std::optional<ReachSweep> reach_sweep(const CodeEvaluation& ev);

  /// The device's Table-I application catalog.
  std::vector<kernels::CatalogEntry> app_catalog() const;
  /// The device's Fig.-3 microbenchmark catalog.
  std::vector<kernels::CatalogEntry> micro_catalog() const;

 private:
  WorkloadConfig workload_config(double scale, isa::CompilerProfile profile) const;
  /// Execution knobs forwarded to job::run_job (workers, observability,
  /// cache directory) — never part of a spec's content hash.
  job::RunOptions run_options() const;
  std::optional<fault::CampaignResult> run_injection(
      const fault::Injector& injector, const kernels::CatalogEntry& entry,
      bool aux_modes, unsigned injections_per_kind, bool* substituted);
  model::FitPrediction make_prediction(const kernels::CatalogEntry& entry,
                                       const profile::CodeProfile& prof,
                                       const fault::CampaignResult& avf,
                                       bool ecc);

  arch::GpuConfig gpu_;
  StudyConfig config_;
  beam::CrossSectionDb db_;
  std::optional<std::vector<MicroCharacterization>> micro_;
  std::optional<model::FitInputs> inputs_;
};

}  // namespace gpurel::core
