// Workload abstraction: one of the paper's codes (or microbenchmarks),
// instantiated for a device, compiler profile, and numeric precision.
//
// A workload owns its compiled kernels and its input generation; a *trial* is
// one complete execution against fresh device memory, optionally observed
// (profiled, fault-injected, or beam-irradiated), classified against the
// golden fault-free output as Masked / SDC / DUE — exactly the taxonomy of
// the paper (§II).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arch/gpu_config.hpp"
#include "isa/compiler_profile.hpp"
#include "isa/program.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/observer.hpp"
#include "sim/snapshot.hpp"

namespace gpurel::core {

enum class Precision : std::uint8_t { Int32, Half, Single, Double };

/// Paper naming convention: H/F/D prefix for floating point, none for INT32.
std::string_view precision_prefix(Precision p);
std::string_view precision_name(Precision p);
/// Bytes of one element of this precision.
unsigned precision_bytes(Precision p);

enum class Outcome : std::uint8_t { Masked, Sdc, Due };
std::string_view outcome_name(Outcome o);

/// Coarse DUE-cause taxonomy ("Sources of DUEs" / paper §V): how a
/// detected-unrecoverable outcome manifested at the API boundary. Derived
/// from the engine's sim::DueKind detail (due_cause_of), which
/// Workload::classify used to collapse into a bare Outcome::Due.
enum class DueCause : std::uint8_t {
  None,             // not a DUE
  Hang,             // device stopped making progress (hidden-resource strike)
  LaunchFailure,    // launch aborted with a device exception
  Watchdog,         // runtime watchdog expired (stalled but live scheduler)
  BarrierDeadlock,  // blocked forever at a synchronization point
  Ecc,              // uncorrectable-ECC abort
  kCount,
};
std::string_view due_cause_name(DueCause c);
DueCause due_cause_of(sim::DueKind k);

/// How an iterative workload drives its convergence loop. Host stepping
/// reads the convergence flag from device memory between launches (simple,
/// but not fork-safe); device stepping chains per-iteration convergence
/// flags through device memory and issues a fixed launch sequence, leaving
/// only a post-loop host read — which is fork-safe.
enum class Stepping : std::uint8_t { Host, Device };

struct TrialResult {
  Outcome outcome = Outcome::Masked;
  sim::DueKind due = sim::DueKind::None;
  DueCause cause = DueCause::None;  // = due_cause_of(due) on a DUE
  sim::LaunchStats stats;  // merged over all launches of the trial
};

class Workload;

/// Constructs fresh workload instances (campaign workers each own one).
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// Drives the launches of one trial: applies the observer and the watchdog,
/// accumulates statistics, and latches the first DUE.
class TrialRunner {
 public:
  TrialRunner(sim::Device& dev, sim::SimObserver* obs, std::uint64_t cycle_budget);

  /// Launch a kernel; returns false once a DUE has occurred (callers must
  /// stop driving the trial). Safe to call after a DUE (no-op, false).
  bool launch(const sim::KernelLaunch& kl);

  /// Force a DUE from host-side logic (e.g. an iterative workload whose
  /// convergence loop exceeds its bound because device data was corrupted).
  void force_due(sim::DueKind kind);

  /// Capture mode: while driving the trial, append a sim::Snapshot to `out`
  /// at each cumulative lane-instruction mark (sorted, strictly increasing;
  /// counted across all launches of the trial). Both pointers must outlive
  /// the trial.
  void enable_capture(const std::vector<std::uint64_t>* marks,
                      std::vector<sim::Snapshot>* out);
  /// Resume mode: launches before the snapshot's ordinal are skipped (their
  /// effects are part of the snapshot), the in-flight launch resumes from
  /// the saved executor state, and merged stats are preset with the
  /// snapshot's prior launches so watchdog arithmetic matches an unforked
  /// trial bit for bit. The snapshot must outlive the trial. `delta` permits
  /// the executor's dirty-flag delta restore when it is still resident on
  /// this snapshot (bit-identical either way).
  void resume_from(const sim::Snapshot& snap, bool delta = false);

  bool due() const { return stats_.due != sim::DueKind::None; }
  const sim::LaunchStats& stats() const { return stats_; }

 private:
  sim::Device& dev_;
  sim::SimObserver* obs_;
  std::uint64_t cycle_budget_;
  unsigned ordinal_ = 0;
  sim::LaunchStats stats_;
  const std::vector<std::uint64_t>* capture_marks_ = nullptr;
  std::vector<sim::Snapshot>* capture_out_ = nullptr;
  std::size_t capture_next_ = 0;
  const sim::Snapshot* resume_ = nullptr;
  bool resume_delta_ = false;
};

struct WorkloadConfig {
  arch::GpuConfig gpu;
  isa::CompilerProfile profile = isa::CompilerProfile::Cuda10;
  std::uint64_t input_seed = 0x5eed;
  /// Global scale knob for workload sizes (1 = default paper-sim sizes).
  double scale = 1.0;
};

class Workload {
 public:
  explicit Workload(WorkloadConfig config) : config_(std::move(config)) {}
  virtual ~Workload() = default;

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Paper-style short name without precision prefix, e.g. "MxM".
  virtual std::string base_name() const = 0;
  virtual Precision precision() const = 0;
  /// Full display name, e.g. "FMXM" / "QUICKSORT".
  virtual std::string name() const;
  /// Whether the kernels model a precompiled vendor library (cuBLAS-like);
  /// SASSIFI cannot instrument such kernels on Kepler (paper §III-D).
  virtual bool uses_library() const { return false; }
  /// Whether execute() only drives launches — it never reads device memory
  /// host-side mid-trial (convergence checks, pivot reads) nor writes inputs
  /// between launches — so any point of the trial is reachable from a device
  /// snapshot alone and trials may be forked from a shared prefix.
  virtual bool fork_safe() const { return false; }

  const WorkloadConfig& config() const { return config_; }

  /// Build programs and run the fault-free reference trial: captures golden
  /// outputs, baseline statistics, and the watchdog budget. Must be called
  /// once before run_trial.
  void prepare(sim::Device& dev);
  bool prepared() const { return prepared_; }

  /// Statistics of the fault-free reference trial.
  const sim::LaunchStats& golden_stats() const;
  /// All compiled kernels of this workload.
  const std::vector<const isa::Program*>& programs() const { return programs_; }
  /// Maximum architectural registers per thread over all kernels.
  unsigned max_regs_per_thread() const;
  /// Maximum shared bytes per block over all kernels (static + dynamic).
  std::uint32_t max_shared_bytes() const;
  /// Cycle budget used as the trial watchdog.
  std::uint64_t watchdog_budget() const { return watchdog_budget_; }

  /// Logical shape of the verified output, for SDC corruption-geometry
  /// classification (obs::classify_sdc_geometry). Default: one row of
  /// precision-sized elements spanning the registered output regions (in
  /// registration order); matrix workloads override with their real shape.
  struct OutputGeometry {
    std::uint64_t rows = 1;
    std::uint64_t cols = 0;
    unsigned elem_bytes = 4;
  };
  virtual OutputGeometry output_geometry() const;

  /// Flattened (row-major over output_geometry) indices of output elements
  /// whose bytes differ from golden. Reads live device memory, so call it
  /// right after a trial classified as SDC, before the next reset.
  std::vector<std::uint64_t> corrupted_elements(sim::Device& dev) const;

  /// Execute one trial against fresh device memory and classify the result.
  TrialResult run_trial(sim::Device& dev, sim::SimObserver* obs = nullptr);

  /// Run the fault-free prefix of a trial once, capturing a snapshot at each
  /// cumulative lane-instruction mark (sorted, strictly increasing, all below
  /// the trial's total). Requires prepare() and fork_safe(); throws if the
  /// capture run raises a DUE or misses a mark.
  void capture_prefix(sim::Device& dev, const std::vector<std::uint64_t>& marks,
                      std::vector<sim::Snapshot>& out);

  /// Re-run the suffix of a trial from `snap`: device memory is rebuilt via
  /// setup() (bump allocation is deterministic, so addresses match), the
  /// allocated image is restored from the snapshot, and execution resumes at
  /// the saved cycle. With an observer whose side effects begin only after
  /// the snapshot's lane mark, the classification and merged stats are
  /// bit-identical to run_trial on the same fault.
  ///
  /// With `delta` set, dirty tracking is armed after the restore; when the
  /// next forked trial resumes from the *same* snapshot on the same device,
  /// the reset + setup + full image copy are replaced by a copy of only the
  /// pages/warps the previous suffix touched (O(footprint) instead of
  /// O(device image)). Any intervening plain trial, capture, or different
  /// snapshot falls back to the full path. Results are bit-identical.
  TrialResult run_trial_forked(sim::Device& dev, const sim::Snapshot& snap,
                               sim::SimObserver* obs = nullptr,
                               bool delta = false);

  /// Bytes of snapshot image copied back by the most recent
  /// run_trial_forked restore (full image size, or the dirty subset on the
  /// delta fast path) — feeds gpurel_campaign_snapshot_restore_bytes_total.
  std::uint64_t last_restore_bytes() const { return last_restore_bytes_; }

 protected:
  // --- subclass interface -------------------------------------------------
  /// Compile kernels; call register_program for each.
  virtual void build_programs() = 0;
  /// Allocate and initialize inputs/outputs on a fresh device.
  virtual void setup(sim::Device& dev) = 0;
  /// Drive the launches of one trial (check runner.launch return values).
  virtual void execute(sim::Device& dev, TrialRunner& runner) = 0;
  /// Compare device outputs to golden. Default: byte-compare every region
  /// registered via register_output.
  virtual bool verify(sim::Device& dev);
  /// Capture golden data after the clean run. Default: snapshot registered
  /// output regions.
  virtual void capture_golden(sim::Device& dev);

  /// Register an output region for the default golden capture/verify.
  void register_output(std::uint32_t addr, std::uint32_t bytes);
  void register_program(const isa::Program* prog);
  std::uint32_t max_dynamic_shared_ = 0;  // subclasses set if they use it

  WorkloadConfig config_;

 private:
  struct OutputRegion {
    std::uint32_t addr;
    std::uint32_t bytes;
  };

  TrialResult classify(sim::Device& dev, TrialRunner& runner);

  std::vector<const isa::Program*> programs_;
  std::vector<OutputRegion> outputs_;
  std::vector<std::vector<std::uint8_t>> golden_;
  sim::LaunchStats golden_stats_;
  std::uint64_t watchdog_budget_ = 0;
  bool prepared_ = false;
  // Delta-restore residency: the snapshot whose image the device's dirty
  // tracking is diffing against (nullptr when the last trial was plain or
  // tracking was disarmed). Guarded by pointer identity plus the memory
  // watermark and the armed-tracking check in run_trial_forked.
  const sim::Snapshot* fork_resident_ = nullptr;
  std::uint64_t last_restore_bytes_ = 0;
};

}  // namespace gpurel::core
