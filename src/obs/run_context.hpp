// The observability context threaded through every engine run: telemetry
// sink, timeline trace writer, and the stderr progress toggle. One struct —
// inherited by CampaignConfig / BeamConfig / StudyConfig — replaces the
// raw-pointer triple those configs used to declare separately. All members
// are strictly observational: results stay bit-identical whatever they
// point at (pinned by tests/test_determinism.cpp).
#pragma once

#include "common/telemetry.hpp"
#include "obs/trace.hpp"

namespace gpurel::obs {

struct RunContext {
  /// JSONL telemetry sink; when null the GPUREL_TELEMETRY=<path> environment
  /// override is consulted (see common/telemetry.hpp).
  telemetry::Sink* telemetry = nullptr;
  /// Chrome-trace timeline writer; when null the GPUREL_TRACE=<path>
  /// override is consulted (see obs/trace.hpp).
  TraceWriter* trace = nullptr;
  /// Live progress meter on stderr.
  bool progress = false;

  /// The sink/writer a run should actually use (configured-or-env-fallback).
  gpurel::telemetry::Sink* resolved_sink() const {
    return gpurel::telemetry::resolve(telemetry);
  }
  TraceWriter* resolved_trace() const { return resolve_trace(trace); }
};

}  // namespace gpurel::obs
