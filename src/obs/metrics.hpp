// Process-wide metrics registry: named counters, gauges and log-bucketed
// latency histograms, bumped lock-free from campaign/beam workers and
// snapshotted serially into JSON or Prometheus text exposition format.
// Registration (name + label lookup) takes a mutex; the returned references
// are stable for the life of the process, so hot paths resolve a metric once
// and then only touch relaxed atomics. Purely observational: nothing here
// feeds back into RNG, scheduling, or results (see tests/test_determinism).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace gpurel::obs {

/// Monotonic event count (Prometheus counter semantics).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (queue depth, AVF, bench timing).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  /// Monotonic high-water mark (used for queue-depth peaks).
  void set_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-bucketed distribution with lock-free observe(). Quantiles are
/// estimated as the upper bound of the bucket holding the requested rank —
/// exact enough for latency reporting given the x2 bucket growth.
class Histogram {
 public:
  explicit Histogram(HistogramBuckets buckets);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const HistogramBuckets& buckets() const { return buckets_; }
  /// Count in bucket i, i in [0, buckets().size()] (last = overflow).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Bucket-upper-bound quantile estimate, q in [0, 1]; 0 when empty.
  /// Observations in the overflow bucket report the last finite bound.
  double quantile(double q) const;

 private:
  HistogramBuckets buckets_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Label set attached to a metric, e.g. {{"kind","FADD"},{"outcome","sdc"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Layout version stamped into Registry::to_json() documents (lint rule
/// schema-version / S1). Bump on any field change.
inline constexpr int kMetricsSchemaVersion = 1;

class Registry {
 public:
  /// The process-wide registry used by the runtime, benches and examples.
  static Registry& global();

  /// Find-or-create. The reference stays valid for the registry's lifetime.
  /// Throws std::logic_error if the (name, labels) key already exists with a
  /// different metric type.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       const HistogramBuckets& buckets =
                           HistogramBuckets::latency_ms());

  /// {"schema_version":N,"metrics":[{name, type, labels,
  ///  value | count/sum/p50/p90/p99/buckets}]} with N = kMetricsSchemaVersion.
  std::string to_json() const;
  /// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count
  /// series with cumulative le labels for histograms).
  std::string to_prometheus() const;
  /// Serialize to a file; warns on stderr and returns false on I/O failure
  /// (observability must not kill a campaign).
  bool write_json(const std::string& path) const;
  bool write_prometheus(const std::string& path) const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& find_or_create(std::string_view name, Labels&& labels, Kind kind,
                         const HistogramBuckets* buckets);

  mutable std::mutex mu_;
  // Keyed by name + serialized labels; map iteration gives the sorted,
  // deterministic export order both formats rely on.
  std::map<std::string, Metric> metrics_;
};

}  // namespace gpurel::obs
