#include "obs/propagation.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/instr_info.hpp"

namespace gpurel::obs {

using isa::MixClass;
using isa::Opcode;
using isa::UnitKind;

std::string_view sdc_geometry_name(SdcGeometry g) {
  switch (g) {
    case SdcGeometry::SingleValue: return "single_value";
    case SdcGeometry::SameRow: return "same_row";
    case SdcGeometry::SameColumn: return "same_column";
    case SdcGeometry::Block: return "block";
    case SdcGeometry::Random: return "random";
    case SdcGeometry::kCount: break;
  }
  return "?";
}

SdcGeometry classify_sdc_geometry(const std::vector<std::uint64_t>& elems,
                                  std::uint64_t rows, std::uint64_t cols) {
  if (elems.empty())
    throw std::invalid_argument("classify_sdc_geometry: no corrupted elements");
  if (cols == 0) cols = 1;
  if (elems.size() == 1) return SdcGeometry::SingleValue;
  std::uint64_t r_min = ~std::uint64_t{0}, r_max = 0;
  std::uint64_t c_min = ~std::uint64_t{0}, c_max = 0;
  for (const std::uint64_t e : elems) {
    const std::uint64_t r = e / cols, c = e % cols;
    r_min = std::min(r_min, r);
    r_max = std::max(r_max, r);
    c_min = std::min(c_min, c);
    c_max = std::max(c_max, c);
  }
  if (r_min == r_max) return SdcGeometry::SameRow;
  if (c_min == c_max) return SdcGeometry::SameColumn;
  // Dense rectangular cluster: bounding box spans several rows and columns
  // but holds at most twice as many cells as there are corrupted elements.
  const std::uint64_t area = (r_max - r_min + 1) * (c_max - c_min + 1);
  if (area <= 2 * static_cast<std::uint64_t>(elems.size()))
    return SdcGeometry::Block;
  (void)rows;
  return SdcGeometry::Random;
}

json::Value PropagationRecord::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema_version", kPropagationSchemaVersion);
  doc.set("trial", trial);
  doc.set("model", model);
  doc.set("fired", fired);
  doc.set("effect", effect);
  doc.set("kind", fired ? isa::unit_kind_name(site_kind) : std::string_view{});
  doc.set("mix", fired ? isa::mix_class_name(site_mix) : std::string_view{});
  doc.set("opcode", fired ? isa::opcode_name(site_opcode) : std::string_view{});
  doc.set("bit", bit);
  doc.set("pc", pc);
  doc.set("sm", sm);
  doc.set("warp", warp);
  doc.set("lane", lane);
  doc.set("cta", cta);
  doc.set("cycle", cycle);
  doc.set("lane_instr", lane_instr);
  doc.set("regs_touched", regs_touched);
  doc.set("preds_touched", preds_touched);
  doc.set("shared_bytes", shared_bytes);
  doc.set("global_bytes", global_bytes);
  doc.set("warps_reached", warps_reached);
  doc.set("blocks_reached", blocks_reached);
  doc.set("control_divergences", control_divergences);
  doc.set("overwrite_kills", overwrite_kills);
  doc.set("masking_depth", masking_depth);
  doc.set("taint_live_at_end", taint_live_at_end);
  doc.set("outcome", outcome);
  doc.set("due", due);
  doc.set("due_cause", due_cause);
  doc.set("geometry", geometry);
  doc.set("corrupted_elems", corrupted_elems);
  doc.set("output_rows", output_rows);
  doc.set("output_cols", output_cols);
  return doc;
}

std::size_t spread_bucket(std::uint64_t n) {
  if (n == 0) return 0;
  std::size_t b = 1;
  std::uint64_t floor = 1;
  while (b + 1 < PropagationReport::kSpreadBuckets && floor * 2 <= n) {
    floor *= 2;
    ++b;
  }
  return b;
}

std::uint64_t spread_bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void PropagationReport::Cell::add(const PropagationRecord& rec) {
  ++trials;
  if (rec.outcome == "SDC") ++sdc;
  else if (rec.outcome == "DUE") ++due;
  else ++masked;
  control_divergences += rec.control_divergences;
  overwrite_kills += rec.overwrite_kills;
  const std::size_t d =
      std::min<std::uint64_t>(rec.masking_depth, kDepthBuckets - 1);
  ++masking_depth[d];
  ++reg_spread[spread_bucket(rec.regs_touched)];
  ++mem_spread[spread_bucket(rec.shared_bytes + rec.global_bytes)];
  if (!rec.geometry.empty()) {
    for (std::size_t g = 0; g < static_cast<std::size_t>(SdcGeometry::kCount);
         ++g) {
      if (rec.geometry == sdc_geometry_name(static_cast<SdcGeometry>(g))) {
        ++geometry[g];
        break;
      }
    }
  }
}

void PropagationReport::Cell::merge(const Cell& other) {
  trials += other.trials;
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  control_divergences += other.control_divergences;
  overwrite_kills += other.overwrite_kills;
  for (std::size_t i = 0; i < kDepthBuckets; ++i)
    masking_depth[i] += other.masking_depth[i];
  for (std::size_t i = 0; i < kSpreadBuckets; ++i) {
    reg_spread[i] += other.reg_spread[i];
    mem_spread[i] += other.mem_spread[i];
  }
  for (std::size_t i = 0; i < geometry.size(); ++i)
    geometry[i] += other.geometry[i];
}

void PropagationReport::add(const PropagationRecord& rec) {
  ++trials;
  if (!rec.fired) return;
  ++fired;
  cells[static_cast<std::size_t>(rec.site_kind)]
       [static_cast<std::size_t>(rec.site_mix)]
           .add(rec);
}

void PropagationReport::merge(const PropagationReport& other) {
  trials += other.trials;
  fired += other.fired;
  for (std::size_t k = 0; k < cells.size(); ++k)
    for (std::size_t m = 0; m < cells[k].size(); ++m)
      cells[k][m].merge(other.cells[k][m]);
}

namespace {

json::Value array_of(const std::uint64_t* v, std::size_t n) {
  json::Value a = json::Value::array();
  for (std::size_t i = 0; i < n; ++i) a.push_back(v[i]);
  return a;
}

void fill_from(const json::Value& a, std::uint64_t* v, std::size_t n,
               const char* what) {
  if (!a.is_array() || a.size() != n)
    throw std::runtime_error(std::string("PropagationReport: bad ") + what);
  for (std::size_t i = 0; i < n; ++i) v[i] = a[i].as_uint();
}

}  // namespace

json::Value PropagationReport::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema_version", kPropagationSchemaVersion);
  doc.set("trials", trials);
  doc.set("fired", fired);
  json::Value arr = json::Value::array();
  for (std::size_t k = 0; k < cells.size(); ++k) {
    for (std::size_t m = 0; m < cells[k].size(); ++m) {
      const Cell& c = cells[k][m];
      if (c.trials == 0) continue;
      json::Value cj = json::Value::object();
      cj.set("kind", isa::unit_kind_name(static_cast<UnitKind>(k)));
      cj.set("mix", isa::mix_class_name(static_cast<MixClass>(m)));
      cj.set("trials", c.trials);
      cj.set("masked", c.masked);
      cj.set("sdc", c.sdc);
      cj.set("due", c.due);
      cj.set("control_divergences", c.control_divergences);
      cj.set("overwrite_kills", c.overwrite_kills);
      cj.set("masking_depth", array_of(c.masking_depth.data(), kDepthBuckets));
      cj.set("reg_spread", array_of(c.reg_spread.data(), kSpreadBuckets));
      cj.set("mem_spread", array_of(c.mem_spread.data(), kSpreadBuckets));
      cj.set("geometry", array_of(c.geometry.data(), c.geometry.size()));
      arr.push_back(std::move(cj));
    }
  }
  doc.set("cells", std::move(arr));
  return doc;
}

PropagationReport PropagationReport::from_json(const json::Value& doc) {
  if (json::get_int(doc, "schema_version") != kPropagationSchemaVersion)
    throw std::runtime_error("PropagationReport: unsupported schema_version");
  PropagationReport rep;
  rep.trials = json::get_uint(doc, "trials");
  rep.fired = json::get_uint(doc, "fired");
  const json::Value& arr = doc.at("cells");
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const json::Value& cj = arr[i];
    const std::string& kind = json::get_string(cj, "kind");
    const std::string& mix = json::get_string(cj, "mix");
    std::size_t k = rep.cells.size(), m = 0;
    for (std::size_t j = 0; j < static_cast<std::size_t>(UnitKind::kCount); ++j)
      if (kind == isa::unit_kind_name(static_cast<UnitKind>(j))) k = j;
    for (std::size_t j = 0; j < static_cast<std::size_t>(MixClass::kCount); ++j)
      if (mix == isa::mix_class_name(static_cast<MixClass>(j))) m = j;
    if (k == rep.cells.size())
      throw std::runtime_error("PropagationReport: unknown unit kind " + kind);
    Cell& c = rep.cells[k][m];
    c.trials = json::get_uint(cj, "trials");
    c.masked = json::get_uint(cj, "masked");
    c.sdc = json::get_uint(cj, "sdc");
    c.due = json::get_uint(cj, "due");
    c.control_divergences = json::get_uint(cj, "control_divergences");
    c.overwrite_kills = json::get_uint(cj, "overwrite_kills");
    fill_from(cj.at("masking_depth"), c.masking_depth.data(), kDepthBuckets,
              "masking_depth");
    fill_from(cj.at("reg_spread"), c.reg_spread.data(), kSpreadBuckets,
              "reg_spread");
    fill_from(cj.at("mem_spread"), c.mem_spread.data(), kSpreadBuckets,
              "mem_spread");
    fill_from(cj.at("geometry"), c.geometry.data(), c.geometry.size(),
              "geometry");
  }
  return rep;
}

void write_propagation_report(std::string& out, const PropagationReport& rep) {
  out += "Fault propagation (" + std::to_string(rep.fired) + "/" +
         std::to_string(rep.trials) + " trials fired)\n";
  out +=
      "  kind      mix     trials masked    sdc    due  ctl-div  kills  "
      "geometry (1/row/col/blk/rnd)\n";
  auto pad = [](std::string s, std::size_t w) {
    while (s.size() < w) s += ' ';
    return s;
  };
  auto num = [](std::uint64_t v, std::size_t w) {
    std::string s = std::to_string(v);
    while (s.size() < w) s.insert(s.begin(), ' ');
    return s;
  };
  for (std::size_t k = 0; k < rep.cells.size(); ++k) {
    for (std::size_t m = 0; m < rep.cells[k].size(); ++m) {
      const PropagationReport::Cell& c = rep.cells[k][m];
      if (c.trials == 0) continue;
      out += "  " +
             pad(std::string(isa::unit_kind_name(static_cast<UnitKind>(k))),
                 10) +
             pad(std::string(isa::mix_class_name(static_cast<MixClass>(m))),
                 8) +
             num(c.trials, 6) + num(c.masked, 7) + num(c.sdc, 7) +
             num(c.due, 7) + num(c.control_divergences, 9) +
             num(c.overwrite_kills, 7) + "  ";
      for (std::size_t g = 0; g < c.geometry.size(); ++g) {
        if (g > 0) out += '/';
        out += std::to_string(c.geometry[g]);
      }
      out += '\n';
    }
  }
}

// --- PropagationObserver ----------------------------------------------------

namespace {

unsigned mem_width_bytes(const isa::Instr& in) {
  switch (static_cast<isa::MemWidth>(in.aux)) {
    case isa::MemWidth::B16: return 2;
    case isa::MemWidth::B32: return 4;
    case isa::MemWidth::B64: return 8;
  }
  return 4;
}

bool is_mma(Opcode op) { return op == Opcode::HMMA || op == Opcode::FMMA; }

std::uint64_t reg_key(unsigned warp, unsigned lane, unsigned reg) {
  return (static_cast<std::uint64_t>(warp) << 16) |
         (static_cast<std::uint64_t>(lane) << 8) | reg;
}

}  // namespace

void PropagationObserver::begin_trial(std::uint64_t trial, std::string model) {
  rec_ = PropagationRecord{};
  rec_.trial = trial;
  rec_.model = std::move(model);
  lane_count_ = 0;
  injected_ = false;
  pending_seed_ = Seed::None;
  pending_regs_ = nullptr;
  seed_reg_ = 0;
  last_ctl_key_ = ~std::uint64_t{0};
  warps_.clear();
  global_taint_.clear();
  shared_taint_.clear();
  regs_ever_.clear();
  preds_ever_.clear();
  global_ever_.clear();
  shared_ever_.clear();
  warps_ever_.clear();
  ctas_ever_.clear();
  mma_tainted_ = false;
  mma_enc_ = 0;
}

void PropagationObserver::preset_lane_count(std::uint64_t n) { lane_count_ = n; }

void PropagationObserver::note_injection(const sim::ExecContext& ctx, Seed seed,
                                         unsigned bit, unsigned reg) {
  rec_.fired = true;
  rec_.effect = seed != Seed::None;
  rec_.site_kind = isa::unit_kind(ctx.instr->op);
  rec_.site_mix = isa::mix_class(ctx.instr->op);
  rec_.site_opcode = ctx.instr->op;
  rec_.bit = bit;
  rec_.pc = ctx.pc;
  rec_.sm = ctx.sm;
  rec_.warp = ctx.warp_id;
  rec_.lane = ctx.lane;
  rec_.cta = ctx.cta;
  rec_.cycle = ctx.cycle;
  rec_.lane_instr = lane_count_;
  injected_ = true;
  // Seeding is deferred to this observer's after_exec for the same lane so
  // the faulted instruction's own (clean-source) writeback cannot clear it.
  pending_seed_ = seed;
  pending_regs_ = ctx.regs;
  seed_reg_ = reg;
}

PropagationObserver::WarpTaint& PropagationObserver::warp_taint(
    unsigned warp_id) {
  return warps_[warp_id];
}

void PropagationObserver::note_depth(std::uint8_t enc) {
  if (enc > 0 && static_cast<std::uint64_t>(enc - 1) > rec_.masking_depth)
    rec_.masking_depth = enc - 1;
}

void PropagationObserver::note_reach(const sim::ExecContext& ctx) {
  warps_ever_.insert(ctx.warp_id);
  ctas_ever_.insert(ctx.cta);
}

void PropagationObserver::taint_reg(sim::ExecContext& ctx, std::uint8_t reg,
                                    std::uint8_t enc) {
  warp_taint(ctx.warp_id).lanes[ctx.lane].reg[reg] = enc;
  regs_ever_.insert(reg_key(ctx.warp_id, ctx.lane, reg));
  note_reach(ctx);
  note_depth(enc);
}

void PropagationObserver::clear_reg(sim::ExecContext& ctx, std::uint8_t reg) {
  const auto it = warps_.find(ctx.warp_id);
  if (it == warps_.end()) return;
  std::uint8_t& slot = it->second.lanes[ctx.lane].reg[reg];
  if (slot == 0) return;
  slot = 0;
  ++rec_.overwrite_kills;
}

void PropagationObserver::taint_pred(sim::ExecContext& ctx, std::uint8_t p,
                                     std::uint8_t enc) {
  warp_taint(ctx.warp_id).lanes[ctx.lane].pred[p] = enc;
  preds_ever_.insert(reg_key(ctx.warp_id, ctx.lane, p));
  note_reach(ctx);
  note_depth(enc);
}

void PropagationObserver::taint_byte(bool shared, unsigned cta,
                                     std::uint32_t addr, std::uint8_t enc) {
  if (shared) {
    shared_taint_[(static_cast<std::uint64_t>(cta) << 32) | addr] = enc;
    shared_ever_.insert((static_cast<std::uint64_t>(cta) << 32) | addr);
  } else {
    global_taint_[addr] = enc;
    global_ever_.insert(addr);
  }
  note_depth(enc);
}

void PropagationObserver::clear_byte(bool shared, unsigned cta,
                                     std::uint32_t addr) {
  if (shared) {
    const auto it =
        shared_taint_.find((static_cast<std::uint64_t>(cta) << 32) | addr);
    if (it == shared_taint_.end()) return;
    shared_taint_.erase(it);
  } else {
    const auto it = global_taint_.find(addr);
    if (it == global_taint_.end()) return;
    global_taint_.erase(it);
  }
  ++rec_.overwrite_kills;
}

void PropagationObserver::after_exec(sim::ExecContext& ctx) {
  ++lane_count_;
  if (!injected_) return;

  const isa::Instr& in = *ctx.instr;
  const auto wit = warps_.find(ctx.warp_id);
  WarpTaint* wt = wit != warps_.end() ? &wit->second : nullptr;
  LaneTaint* lt = wt != nullptr ? &wt->lanes[ctx.lane] : nullptr;

  // Source taint: max derivation depth over the warp's sticky control taint,
  // the guard predicate, every used source register, and loaded bytes.
  std::uint8_t senc = 0;
  const auto fold = [&senc](std::uint8_t e) {
    if (e > senc) senc = e;
  };
  if (wt != nullptr && wt->control) fold(wt->control_depth);
  if (lt != nullptr && !in.unguarded()) fold(lt->pred[in.guard_index()]);
  if (lt != nullptr && in.op == Opcode::SEL) fold(lt->pred[in.aux & 0x07]);
  if (is_mma(in.op)) {
    // Warp-wide: one tainted fragment anywhere taints every lane's
    // accumulator. Lanes arrive in order, so lane 0 computes the warp OR.
    if (ctx.lane == 0) {
      mma_tainted_ = false;
      mma_enc_ = 0;
      if (wt != nullptr) {
        for (unsigned l = 0; l < 32; ++l) {
          const LaneTaint& t = wt->lanes[l];
          for (unsigned s = 0; s < 3; ++s) {
            if (!sim::src_slot_used(in, s)) continue;
            const unsigned width = sim::src_reg_width(in, s);
            for (unsigned k = 0; k < width; ++k) {
              const unsigned reg = in.src[s] + k;
              if (reg < isa::kRZ && t.reg[reg] > mma_enc_)
                mma_enc_ = t.reg[reg];
            }
          }
        }
        mma_tainted_ = mma_enc_ > 0;
      }
    }
    if (mma_tainted_) fold(mma_enc_);
  } else if (lt != nullptr) {
    for (unsigned s = 0; s < 3; ++s) {
      if (!sim::src_slot_used(in, s)) continue;
      const unsigned width = sim::src_reg_width(in, s);
      for (unsigned k = 0; k < width; ++k) {
        const unsigned reg = in.src[s] + k;
        if (reg < isa::kRZ) fold(lt->reg[reg]);
      }
    }
  }
  if (in.op == Opcode::LDG || in.op == Opcode::LDS || in.op == Opcode::ATOM) {
    const unsigned bytes =
        in.op == Opcode::ATOM ? 4u : mem_width_bytes(in);
    const bool shared = in.op == Opcode::LDS;
    for (unsigned i = 0; i < bytes; ++i) {
      if (shared) {
        const auto it = shared_taint_.find(
            (static_cast<std::uint64_t>(ctx.cta) << 32) | (ctx.eff_addr + i));
        if (it != shared_taint_.end()) fold(it->second);
      } else {
        const auto it = global_taint_.find(ctx.eff_addr + i);
        if (it != global_taint_.end()) fold(it->second);
      }
    }
  }

  const std::uint8_t wenc =
      senc == 0 ? 0 : (senc >= kDepthCap ? kDepthCap : senc + 1);

  // Destination writeback: propagate or kill.
  if (isa::writes_gpr(in.op)) {
    const unsigned width = std::max(sim::dst_reg_width(in), 1u);
    for (unsigned k = 0; k < width; ++k) {
      const unsigned reg = in.dst + k;
      if (reg >= isa::kRZ) continue;
      if (wenc > 0) taint_reg(ctx, static_cast<std::uint8_t>(reg), wenc);
      else clear_reg(ctx, static_cast<std::uint8_t>(reg));
    }
  }
  if (isa::writes_predicate(in.op)) {
    const std::uint8_t p = in.dst & 0x07;
    if (p < isa::kNumPredicates) {
      if (wenc > 0) {
        taint_pred(ctx, p, wenc);
      } else if (lt != nullptr && lt->pred[p] != 0) {
        lt->pred[p] = 0;
        ++rec_.overwrite_kills;
      }
    }
  }

  // Memory writeback (STG/STS store `bytes`; ATOM rewrites its 32-bit word).
  if (in.op == Opcode::STG || in.op == Opcode::STS || in.op == Opcode::ATOM) {
    const unsigned bytes =
        in.op == Opcode::ATOM ? 4u : mem_width_bytes(in);
    const bool shared = in.op == Opcode::STS;
    for (unsigned i = 0; i < bytes; ++i) {
      if (wenc > 0) taint_byte(shared, ctx.cta, ctx.eff_addr + i, wenc);
      else clear_byte(shared, ctx.cta, ctx.eff_addr + i);
    }
    if (wenc > 0) note_reach(ctx);
  }

  // Control flow: a tainted guard on a control instruction is a divergence
  // event (counted once per warp issue) and makes the warp's control state
  // sticky-tainted — every later write of the warp is suspect.
  if (isa::is_control(in.op) && lt != nullptr && !in.unguarded()) {
    const std::uint8_t genc = lt->pred[in.guard_index()];
    if (genc > 0) {
      const std::uint64_t key = (ctx.cycle << 24) ^
                                (static_cast<std::uint64_t>(ctx.warp_id) << 12) ^
                                ctx.pc;
      if (key != last_ctl_key_) {
        last_ctl_key_ = key;
        ++rec_.control_divergences;
      }
      WarpTaint& w = warp_taint(ctx.warp_id);
      w.control = true;
      w.control_depth = std::max(w.control_depth, genc);
      note_reach(ctx);
      note_depth(genc);
    }
  }

  // Apply the deferred injection seed once the faulted lane's writeback (and
  // the general rules above) are done, so the seed cannot be cleared by the
  // faulted instruction itself.
  if (pending_seed_ != Seed::None && ctx.regs == pending_regs_) {
    const Seed seed = pending_seed_;
    pending_seed_ = Seed::None;
    pending_regs_ = nullptr;
    switch (seed) {
      case Seed::GprWrite:
        taint_reg(ctx, static_cast<std::uint8_t>(seed_reg_), 1);
        break;
      case Seed::PredWrite:
        taint_pred(ctx, static_cast<std::uint8_t>(seed_reg_), 1);
        break;
      case Seed::ControlFlow: {
        WarpTaint& w = warp_taint(ctx.warp_id);
        w.control = true;
        w.control_depth = std::max<std::uint8_t>(w.control_depth, 1);
        ++rec_.control_divergences;
        note_reach(ctx);
        break;
      }
      case Seed::StoreBytes: {
        const bool shared = in.op == Opcode::STS;
        const unsigned bytes = mem_width_bytes(in);
        for (unsigned i = 0; i < bytes; ++i)
          taint_byte(shared, ctx.cta, ctx.eff_addr + i, 1);
        note_reach(ctx);
        break;
      }
      case Seed::None:
        break;
    }
  }
}

PropagationRecord PropagationObserver::finish() {
  rec_.regs_touched = regs_ever_.size();
  rec_.preds_touched = preds_ever_.size();
  rec_.shared_bytes = shared_ever_.size();
  rec_.global_bytes = global_ever_.size();
  rec_.warps_reached = warps_ever_.size();
  rec_.blocks_reached = ctas_ever_.size();
  bool live = !global_taint_.empty() || !shared_taint_.empty();
  for (const auto& [id, wt] : warps_) {
    if (live) break;
    if (wt.control) live = true;
    for (unsigned l = 0; l < 32 && !live; ++l) {
      for (unsigned r = 0; r < 256 && !live; ++r)
        if (wt.lanes[l].reg[r] != 0) live = true;
      for (unsigned p = 0; p < 8 && !live; ++p)
        if (wt.lanes[l].pred[p] != 0) live = true;
    }
  }
  rec_.taint_live_at_end = live;
  return rec_;
}

}  // namespace gpurel::obs
