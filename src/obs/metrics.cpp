#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/json.hpp"
#include "common/telemetry.hpp"

namespace gpurel::obs {

namespace {

// Sample-value formatting for JSON / Prometheus exposition. Finite values go
// through the canonical shortest-round-trip dumper; non-finite values become
// JSON null ("nan"/"inf" are invalid JSON — same rule as telemetry::Field)
// or the Prometheus spellings NaN/+Inf/-Inf.
void append_double(std::string& out, double v, bool prometheus) {
  if (!std::isfinite(v)) {
    out += prometheus ? (std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf"))
                      : "null";
    return;
  }
  json::append_shortest_double(out, v);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

// Prometheus label values escape backslash, double-quote and newline.
void append_prom_label_value(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// {label="value",...} — `extra` appends one more pair (histogram le).
void append_prom_labels(std::string& out, const Labels& labels,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_prom_label_value(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_prom_label_value(out, extra_value);
    out += '"';
  }
  out += '}';
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    telemetry::append_json_string(out, k);
    out += ':';
    telemetry::append_json_string(out, v);
  }
  out += '}';
}

}  // namespace

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void Gauge::set_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(HistogramBuckets buckets)
    : buckets_(std::move(buckets)),
      counts_(new std::atomic<std::uint64_t>[buckets_.size() + 1]) {
  for (std::size_t i = 0; i <= buckets_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  counts_[buckets_.index_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the requested order statistic, 1-based; ceil so q=0.5 of two
  // observations lands on the first.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= buckets_.size(); ++i) {
    cum += bucket_count(i);
    if (cum >= rank && cum > 0) {
      const std::size_t finite = i < buckets_.size() ? i : buckets_.size() - 1;
      return buckets_.bound(finite);
    }
  }
  return buckets_.bound(buckets_.size() - 1);
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // never destroyed: workers may
  return *reg;                            // still bump metrics at exit
}

namespace {

std::string make_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  key += '{';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

}  // namespace

Registry::Metric& Registry::find_or_create(std::string_view name,
                                           Labels&& labels, Kind kind,
                                           const HistogramBuckets* buckets) {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("obs::Registry: metric '" + key +
                             "' re-registered with a different type");
    return it->second;
  }
  Metric m;
  m.kind = kind;
  m.name = std::string(name);
  m.labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter: m.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: m.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      m.histogram = std::make_unique<Histogram>(*buckets);
      break;
  }
  return metrics_.emplace(key, std::move(m)).first->second;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::kCounter, nullptr)
              .counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::kGauge, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels,
                               const HistogramBuckets& buckets) {
  return *find_or_create(name, std::move(labels), Kind::kHistogram, &buckets)
              .histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema_version\":";
  out += std::to_string(kMetricsSchemaVersion);
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& [key, m] : metrics_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    telemetry::append_json_string(out, m.name);
    out += ',';
    append_json_labels(out, m.labels);
    switch (m.kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":";
        append_u64(out, m.counter->value());
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":";
        append_double(out, m.gauge->value(), /*prometheus=*/false);
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        out += ",\"type\":\"histogram\",\"count\":";
        append_u64(out, h.count());
        out += ",\"sum\":";
        append_double(out, h.sum(), false);
        out += ",\"p50\":";
        append_double(out, h.quantile(0.50), false);
        out += ",\"p90\":";
        append_double(out, h.quantile(0.90), false);
        out += ",\"p99\":";
        append_double(out, h.quantile(0.99), false);
        out += ",\"buckets\":[";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= h.buckets().size(); ++i) {
          // Skip empty leading/inner buckets? No — cumulative counts need
          // every bound, but only emit buckets up to the last non-empty one
          // to keep files small. Overflow is always emitted as le=null.
          cum += h.bucket_count(i);
          if (i < h.buckets().size()) {
            if (h.bucket_count(i) == 0 && cum != h.count()) continue;
            out += "{\"le\":";
            append_double(out, h.buckets().bound(i), false);
          } else {
            out += "{\"le\":null";
          }
          out += ",\"count\":";
          append_u64(out, cum);
          out += "},";
          if (cum == h.count()) break;
        }
        if (out.back() == ',') out.pop_back();
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

/// Help catalogue for the metrics gpurel itself emits. Unknown names (user
/// metrics registered through the same Registry) simply get no HELP line.
const char* metric_help(const std::string& name) {
  static const std::pair<const char*, const char*> kHelp[] = {
      {"gpurel_campaign_trials_total", "Injection trials executed"},
      {"gpurel_campaign_trial_latency_ms", "Wall-clock latency of one trial"},
      {"gpurel_campaign_snapshots_total",
       "Fork-prefix snapshots captured across workers"},
      {"gpurel_campaign_snapshot_pool_bytes",
       "Bytes retained for fork batching: snapshot memory images of each "
       "distinct pool plus per-worker dirty-tracking scratch"},
      {"gpurel_campaign_snapshot_restore_bytes_total",
       "Snapshot image bytes copied back by forked-trial restores (the "
       "dirty subset on delta restores)"},
      {"gpurel_campaign_outcomes_total",
       "Trial outcomes by fault model, unit kind, and outcome"},
      {"gpurel_campaign_dynamic_sites",
       "Dynamic injection sites of the last campaign, per unit kind"},
      {"gpurel_campaign_site_coverage",
       "Injections per dynamic site in the last campaign"},
      {"gpurel_beam_runs_total", "Beam experiment runs executed"},
      {"gpurel_beam_run_latency_ms", "Wall-clock latency of one beam run"},
      {"gpurel_beam_outcomes_total", "Beam run outcomes by strike target"},
      {"gpurel_job_cache_hits_total", "Job results served from the cache"},
      {"gpurel_job_cache_misses_total", "Job cache lookups that missed"},
      {"gpurel_job_cache_stores_total", "Job results written to the cache"},
      {"gpurel_process_peak_rss_bytes",
       "Peak resident set size of the process"},
      {"gpurel_threadpool_jobs_total", "Jobs executed by the thread pool"},
      {"gpurel_threadpool_queue_depth", "Current thread-pool queue depth"},
      {"gpurel_threadpool_queue_depth_peak", "Peak thread-pool queue depth"},
      {"gpurel_threadpool_chunk_pulls_total",
       "Dynamic-schedule chunk claims by the thread pool"},
      {"gpurel_threadpool_index_pulls_total",
       "Dynamic-schedule index claims by the thread pool"},
  };
  for (const auto& [n, h] : kHelp)
    if (name == n) return h;
  return nullptr;
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_name;
  for (const auto& [key, m] : metrics_) {
    if (m.name != last_name) {
      if (const char* help = metric_help(m.name)) {
        out += "# HELP ";
        out += m.name;
        out += ' ';
        out += help;
        out += '\n';
      }
      out += "# TYPE ";
      out += m.name;
      switch (m.kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " histogram\n"; break;
      }
      last_name = m.name;
    }
    switch (m.kind) {
      case Kind::kCounter:
        out += m.name;
        append_prom_labels(out, m.labels);
        out += ' ';
        append_u64(out, m.counter->value());
        out += '\n';
        break;
      case Kind::kGauge:
        out += m.name;
        append_prom_labels(out, m.labels);
        out += ' ';
        append_double(out, m.gauge->value(), /*prometheus=*/true);
        out += '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= h.buckets().size(); ++i) {
          cum += h.bucket_count(i);
          const bool overflow = i == h.buckets().size();
          if (!overflow && h.bucket_count(i) == 0 && cum != h.count())
            continue;  // keep the exposition small; cumulative stays correct
          std::string le;
          if (overflow) {
            le = "+Inf";
          } else {
            append_double(le, h.buckets().bound(i), true);
          }
          out += m.name;
          out += "_bucket";
          append_prom_labels(out, m.labels, "le", le);
          out += ' ';
          append_u64(out, cum);
          out += '\n';
          if (!overflow && cum == h.count()) {
            // Still need the +Inf terminator Prometheus requires.
            out += m.name;
            out += "_bucket";
            append_prom_labels(out, m.labels, "le", "+Inf");
            out += ' ';
            append_u64(out, cum);
            out += '\n';
            break;
          }
        }
        out += m.name;
        out += "_sum";
        append_prom_labels(out, m.labels);
        out += ' ';
        append_double(out, h.sum(), true);
        out += '\n';
        out += m.name;
        out += "_count";
        append_prom_labels(out, m.labels);
        out += ' ';
        append_u64(out, h.count());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body,
                const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "gpurel: cannot write %s to '%s'\n", what,
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok)
    std::fprintf(stderr, "gpurel: short write of %s to '%s'\n", what,
                 path.c_str());
  return ok;
}

}  // namespace

bool Registry::write_json(const std::string& path) const {
  return write_file(path, to_json(), "metrics JSON");
}

bool Registry::write_prometheus(const std::string& path) const {
  return write_file(path, to_prometheus(), "metrics exposition");
}

}  // namespace gpurel::obs
