// Fault-propagation flight recorder: per-trial provenance of an injected
// fault's lifetime inside the simulator — where it landed, how far the
// corruption spread (taint tracking over registers, predicates, shared and
// global memory), whether control flow diverged, and how it ended (masked by
// overwrite, SDC with an output-corruption geometry in the taxonomy of "The
// Anatomy of Silent Data Corruption", or DUE). Purely observational: the
// PropagationObserver claims only the after-exec hook and never mutates
// architectural state, so enabling it cannot change trial outcomes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"
#include "sim/observer.hpp"

namespace gpurel::obs {

/// Version of the per-trial provenance record and the aggregate report
/// (bumped together; every emitted document carries it).
inline constexpr std::int64_t kPropagationSchemaVersion = 1;

/// Output-corruption geometry of an SDC trial, classified from the flattened
/// (row-major) indices of the corrupted output elements.
enum class SdcGeometry : std::uint8_t {
  SingleValue,  // exactly one corrupted element
  SameRow,      // all corrupted elements share a row
  SameColumn,   // all corrupted elements share a column
  Block,        // confined to a dense rectangular region
  Random,       // anything else (scattered)
  kCount,
};

std::string_view sdc_geometry_name(SdcGeometry g);

/// Classify corrupted element indices against a rows x cols row-major output.
/// `elems` must be non-empty; a Block is a bounding box spanning more than
/// one row and column whose area is at most twice the corrupted count.
SdcGeometry classify_sdc_geometry(const std::vector<std::uint64_t>& elems,
                                  std::uint64_t rows, std::uint64_t cols);

/// Provenance of one injected trial. Every field is derived from simulated
/// state only (cycles, lane-instruction counts, architectural footprints),
/// so the record is byte-identical for any worker count, schedule, or
/// fork-epoch bucketing — see to_json() for the pinned serialization.
struct PropagationRecord {
  std::uint64_t trial = 0;      // global trial id in the campaign's order
  std::string model;            // fault model short name (IOV/RF/PR/IA/...)

  // Injection site. `fired` is false for trials resolved at plan time (zero
  // reachable sites); `effect` is false when the strike hit write-discarding
  // state (RZ destination, PT predicate) and changed nothing.
  bool fired = false;
  bool effect = false;
  isa::UnitKind site_kind = isa::UnitKind::OTHER;
  isa::MixClass site_mix = isa::MixClass::OTHERS;
  isa::Opcode site_opcode = isa::Opcode::NOP;
  unsigned bit = 0;             // flip position (mode-specific meaning)
  std::uint32_t pc = 0;
  unsigned sm = 0;
  unsigned warp = 0;
  unsigned lane = 0;
  unsigned cta = 0;

  // First architectural divergence from the fault-free run: under the
  // single-fault model state is bit-identical until the flip lands, so this
  // is the fire point. `lane_instr` counts after-exec lane executions before
  // the faulted instruction; forked trials preset the counter with the
  // snapshot prefix's count, keeping the value identical to an unforked run.
  std::uint64_t cycle = 0;
  std::uint64_t lane_instr = 0;

  // Contamination footprint: distinct architectural locations ever touched
  // by tainted values (cumulative, never decremented by overwrites).
  std::uint64_t regs_touched = 0;
  std::uint64_t preds_touched = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t warps_reached = 0;
  std::uint64_t blocks_reached = 0;
  std::uint64_t control_divergences = 0;  // control ops with tainted guard/PC

  // Masking dynamics: clean overwrites that killed a tainted location, the
  // deepest derivation chain observed (injection = depth 0), and whether any
  // taint survived to the end of the trial.
  std::uint64_t overwrite_kills = 0;
  std::uint64_t masking_depth = 0;
  bool taint_live_at_end = false;

  // Terminal event.
  std::string outcome;          // "Masked" / "SDC" / "DUE"
  std::string due;              // engine DueKind detail ("" otherwise)
  std::string due_cause;        // core::DueCause taxonomy ("" otherwise)
  std::string geometry;         // SDC corruption geometry ("" otherwise)
  std::uint64_t corrupted_elems = 0;
  std::uint64_t output_rows = 0;
  std::uint64_t output_cols = 0;

  /// Canonical schema-versioned JSON document (one JSONL line when dumped).
  json::Value to_json() const;
};

/// Aggregate propagation tables per (unit kind x opcode class) of the
/// injection site: outcome split, masking-depth histogram, contamination
/// spread histograms (CDF-able), and SDC-geometry mix. Merging shards is an
/// integer sum, mirroring CampaignResult::merge.
struct PropagationReport {
  /// Masking-depth histogram buckets: depth 0..7, last bucket = 8 and over.
  static constexpr std::size_t kDepthBuckets = 9;
  /// Spread histogram buckets: 0, 1, 2, 4, ..., 256, last = 512 and over.
  static constexpr std::size_t kSpreadBuckets = 11;

  struct Cell {
    std::uint64_t trials = 0;
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;
    std::uint64_t due = 0;
    std::uint64_t control_divergences = 0;
    std::uint64_t overwrite_kills = 0;
    std::array<std::uint64_t, kDepthBuckets> masking_depth{};
    std::array<std::uint64_t, kSpreadBuckets> reg_spread{};
    std::array<std::uint64_t, kSpreadBuckets> mem_spread{};
    std::array<std::uint64_t, static_cast<std::size_t>(SdcGeometry::kCount)>
        geometry{};

    void add(const PropagationRecord& rec);
    void merge(const Cell& other);
  };

  std::uint64_t trials = 0;   // every propagation-enabled trial, fired or not
  std::uint64_t fired = 0;
  std::array<std::array<Cell, static_cast<std::size_t>(isa::MixClass::kCount)>,
             static_cast<std::size_t>(isa::UnitKind::kCount)>
      cells{};

  const Cell& cell(isa::UnitKind k, isa::MixClass m) const {
    return cells[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)];
  }

  void add(const PropagationRecord& rec);
  void merge(const PropagationReport& other);

  /// Sparse canonical JSON: only cells with trials > 0 are serialized.
  json::Value to_json() const;
  static PropagationReport from_json(const json::Value& doc);
};

/// Map a spread count onto its kSpreadBuckets histogram bucket.
std::size_t spread_bucket(std::uint64_t n);
/// Lower bound of a spread bucket (0, 1, 2, 4, ..., 512).
std::uint64_t spread_bucket_floor(std::size_t bucket);

/// Human-readable propagation tables (used by core::report and the
/// `gpurel_jobs report` subcommand).
void write_propagation_report(std::string& out, const PropagationReport& rep);

/// Per-trial taint tracker. Composed *behind* the injection observer in a
/// sim::TeeObserver so its after-exec hook sees post-injection state; the
/// injection observer calls note_injection at fire time. Claims only the
/// after-exec hook — the executor's dispatch path (and therefore timing,
/// scheduling, and outcomes) is identical to an injection-only run, which
/// already claims that hook for every fault model.
///
/// Taint is a may-propagate over-approximation: a destination becomes
/// tainted when any used source slot, the guard predicate, a loaded byte, or
/// the warp's (sticky) control state is tainted; a clean write over a
/// tainted location kills it and counts as an overwrite masking event. MMA
/// is warp-wide: one tainted fragment taints all 32 lanes' accumulators.
/// Instruction-address faults and control ops with tainted guards set the
/// sticky per-warp control taint (every later write of that warp is
/// suspect).
class PropagationObserver final : public sim::SimObserver {
 public:
  /// How the injection manifested, for taint seeding.
  enum class Seed : std::uint8_t {
    GprWrite,     // IOV / RF: one register of (warp, lane) flipped
    PredWrite,    // Predicate: one predicate of (warp, lane) flipped
    ControlFlow,  // IA: the warp's next PC flipped
    StoreBytes,   // STV / STA: the bytes the store writes are wrong
    None,         // fired but no architectural change (RZ / PT target)
  };

  unsigned wants() const override { return kWantsAfterExec; }

  /// Arm the tracker for one trial. `model` is the fault model short name.
  void begin_trial(std::uint64_t trial, std::string model);

  /// Forked trials: preset the after-exec lane-instruction counter with the
  /// snapshot prefix's count (same domain as SiteCounts::total_lane), so
  /// recorded fire points match an unforked run bit for bit.
  void preset_lane_count(std::uint64_t n);

  /// Called by the injection observer the moment its fault fires, before
  /// this observer's after_exec for the same instruction. `reg` names the
  /// flipped GPR (GprWrite) or predicate (PredWrite); ignored otherwise.
  void note_injection(const sim::ExecContext& ctx, Seed seed, unsigned bit,
                      unsigned reg);

  void after_exec(sim::ExecContext& ctx) override;

  /// Close the trial and return the record (terminal fields still blank —
  /// the campaign stamps outcome/due/geometry, which need the workload).
  PropagationRecord finish();

 private:
  struct LaneTaint {
    std::array<std::uint8_t, 256> reg{};   // 0 = clean, else depth + 1
    std::array<std::uint8_t, 8> pred{};    // same encoding; [7] unused (PT)
  };
  struct WarpTaint {
    std::array<LaneTaint, 32> lanes{};
    bool control = false;                  // sticky control-flow taint
    std::uint8_t control_depth = 0;        // depth + 1 at divergence
  };

  static constexpr std::uint8_t kDepthCap = 255;

  WarpTaint& warp_taint(unsigned warp_id);
  void taint_reg(sim::ExecContext& ctx, std::uint8_t reg, std::uint8_t enc);
  void clear_reg(sim::ExecContext& ctx, std::uint8_t reg);
  void taint_pred(sim::ExecContext& ctx, std::uint8_t p, std::uint8_t enc);
  void taint_byte(bool shared, unsigned cta, std::uint32_t addr,
                  std::uint8_t enc);
  void clear_byte(bool shared, unsigned cta, std::uint32_t addr);
  void note_reach(const sim::ExecContext& ctx);
  void note_depth(std::uint8_t enc);

  PropagationRecord rec_;
  std::uint64_t lane_count_ = 0;
  bool injected_ = false;
  Seed pending_seed_ = Seed::None;         // applied at the site's after_exec
  const sim::ThreadRegs* pending_regs_ = nullptr;
  unsigned seed_reg_ = 0;                  // flipped GPR / predicate index
  std::uint64_t last_ctl_key_ = ~std::uint64_t{0};  // dedupe per warp issue

  // Shadow taint state (ordered containers: deterministic iteration).
  std::map<unsigned, WarpTaint> warps_;
  std::map<std::uint32_t, std::uint8_t> global_taint_;
  std::map<std::uint64_t, std::uint8_t> shared_taint_;  // key cta<<32 | addr

  // Cumulative footprint ("ever touched by taint").
  std::set<std::uint64_t> regs_ever_;    // warp<<16 | lane<<8 | reg
  std::set<std::uint64_t> preds_ever_;   // warp<<16 | lane<<8 | pred
  std::set<std::uint32_t> global_ever_;
  std::set<std::uint64_t> shared_ever_;
  std::set<unsigned> warps_ever_;
  std::set<unsigned> ctas_ever_;

  // Warp-wide MMA taint, computed once per (warp, cycle, pc) at lane 0.
  bool mma_tainted_ = false;
  std::uint8_t mma_enc_ = 0;
};

}  // namespace gpurel::obs
