#include "obs/sim_tracer.hpp"

#include <atomic>

#include "isa/program.hpp"

namespace gpurel::obs {

namespace {

int next_sim_pid() {
  static std::atomic<int> next{kSimPid};
  return next.fetch_add(1, std::memory_order_relaxed);
}

constexpr int kKernelTid = 0;

int block_tid(unsigned sm, int lane) {
  // One viewer thread per (SM, residency lane); lane counts stay tiny
  // (bounded by blocks-per-SM occupancy), so the encoding never collides.
  return 1 + static_cast<int>(sm) * 64 + lane;
}

}  // namespace

SimTracer::SimTracer(TraceWriter& writer, std::string label)
    : writer_(writer), label_(std::move(label)), pid_(next_sim_pid()) {
  writer_.name_process(pid_, "sim " + label_ + " (cycles as us)");
  writer_.name_thread(pid_, kKernelTid, "kernel launches");
}

void SimTracer::on_launch_begin(const sim::LaunchInfo& info, sim::Machine&) {
  launch_start_ = cycle_offset_;
  launch_ordinal_ = info.ordinal;
  launch_name_ =
      info.launch != nullptr && info.launch->program != nullptr
          ? info.launch->program->name()
          : std::string("kernel");
}

void SimTracer::on_launch_end(const sim::LaunchStats& stats) {
  const double end = launch_start_ + static_cast<double>(stats.cycles);
  // Blocks still resident at an aborted (DUE) launch end never retire;
  // close their residency spans at the end of the launch.
  for (const auto& [key, ts] : open_blocks_) {
    const int lane = lane_for(key.first, ts, end);
    writer_.complete("cta " + std::to_string(key.second), "sim_block", pid_,
                     block_tid(key.first, lane), ts, end - ts,
                     {{"sm", key.first}, {"cta", key.second}});
  }
  open_blocks_.clear();
  writer_.complete(launch_name_, "sim_kernel", pid_, kKernelTid, launch_start_,
                   static_cast<double>(stats.cycles),
                   {{"ordinal", launch_ordinal_},
                    {"cycles", stats.cycles},
                    {"warp_instructions", stats.warp_instructions},
                    {"ipc", stats.ipc},
                    {"achieved_occupancy", stats.achieved_occupancy},
                    {"due", sim::due_kind_name(stats.due)}});
  cycle_offset_ = end;
  for (auto& [sm, lanes] : sm_lanes_)
    for (double& until : lanes) until = 0.0;  // next launch reuses lane 0+
}

void SimTracer::on_block_placed(unsigned sm, unsigned cta,
                                std::uint64_t cycle) {
  // Initial placement fires before on_launch_begin; cycle_offset_ already
  // points at this launch's origin either way.
  open_blocks_[{sm, cta}] = cycle_offset_ + static_cast<double>(cycle);
}

void SimTracer::on_block_retired(unsigned sm, unsigned cta,
                                 std::uint64_t cycle) {
  const auto it = open_blocks_.find({sm, cta});
  if (it == open_blocks_.end()) return;
  const double ts = it->second;
  const double end = cycle_offset_ + static_cast<double>(cycle);
  open_blocks_.erase(it);
  const int lane = lane_for(sm, ts, end);
  writer_.complete("cta " + std::to_string(cta), "sim_block", pid_,
                   block_tid(sm, lane), ts, end - ts,
                   {{"sm", sm}, {"cta", cta}});
}

int SimTracer::lane_for(unsigned sm, double from, double until) {
  auto& lanes = sm_lanes_[sm];
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i] <= from) {
      lanes[i] = until;
      return static_cast<int>(i);
    }
  }
  lanes.push_back(until);
  const int lane = static_cast<int>(lanes.size()) - 1;
  writer_.name_thread(pid_, block_tid(sm, lane),
                      "SM " + std::to_string(sm) + " residency");
  return lane;
}

}  // namespace gpurel::obs
