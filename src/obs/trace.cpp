#include "obs/trace.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace gpurel::obs {

namespace {

void append_ts(std::string& out, double us) {
  if (!std::isfinite(us)) us = 0.0;
  char buf[40];
  // Chrome trace-event timestamps are microseconds with fixed millisecond
  // precision by convention; the viewer owns this format, we just feed it.
  // gpurel-lint: allow(float-format) externally-owned trace-event format
  std::snprintf(buf, sizeof buf, "%.3f", us);
  out += buf;
}

void append_common(std::string& out, std::string_view name,
                   std::string_view category, int pid, int tid, double ts_us) {
  out += "\"name\":";
  telemetry::append_json_string(out, name);
  out += ",\"cat\":";
  telemetry::append_json_string(out, category);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts(out, ts_us);
}

void append_args(std::string& out,
                 std::initializer_list<telemetry::Field> args) {
  out += ",\"args\":{";
  bool first = true;
  for (const auto& f : args) {
    if (!first) out += ',';
    first = false;
    f.append_to(out);
  }
  out += '}';
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr)
    throw std::runtime_error("TraceWriter: cannot open '" + path +
                             "' for writing");
  std::fputs("[\n", file_);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fputs("\n]\n", file_);
  std::fclose(file_);
  file_ = nullptr;
}

void TraceWriter::emit(const std::string& event_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (!first_) std::fputs(",\n", file_);
  first_ = false;
  std::fwrite(event_json.data(), 1, event_json.size(), file_);
  emitted_.add();
}

void TraceWriter::complete(std::string_view name, std::string_view category,
                           int pid, int tid, double ts_us, double dur_us,
                           std::initializer_list<telemetry::Field> args) {
  // Chrome/Perfetto own the trace-event schema ("ph"/"ts"/"dur"/...); a
  // schema_version field is not part of that format.
  // gpurel-lint: allow(schema-version) externally-owned trace-event format
  std::string out = "{\"ph\":\"X\",";
  append_common(out, name, category, pid, tid, ts_us);
  out += ",\"dur\":";
  append_ts(out, dur_us < 0.0 ? 0.0 : dur_us);
  append_args(out, args);
  out += '}';
  emit(out);
}

void TraceWriter::instant(std::string_view name, std::string_view category,
                          int pid, int tid, double ts_us,
                          std::initializer_list<telemetry::Field> args) {
  std::string out = "{\"ph\":\"i\",\"s\":\"t\",";
  append_common(out, name, category, pid, tid, ts_us);
  append_args(out, args);
  out += '}';
  emit(out);
}

void TraceWriter::name_process(int pid, std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!named_processes_.insert(pid).second) return;
  }
  std::string out =
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
      ",\"ts\":0,\"args\":{";
  telemetry::Field("name", name).append_to(out);
  out += "}}";
  emit(out);
}

void TraceWriter::name_thread(int pid, int tid, std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!named_threads_.insert({pid, tid}).second) return;
  }
  std::string out =
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
      ",\"tid\":" + std::to_string(tid) + ",\"ts\":0,\"args\":{";
  telemetry::Field("name", name).append_to(out);
  out += "}}";
  emit(out);
}

TraceWriter* env_trace() {
  struct Holder {
    TraceWriter* writer = nullptr;
    Holder() {
      const char* path = std::getenv("GPUREL_TRACE");
      if (path == nullptr || path[0] == '\0') return;
      try {
        writer = new TraceWriter(path);  // lives until process exit; the
        // atexit hook below writes the closing bracket so the file is valid
        // JSON even without an explicit close().
        std::atexit([] { env_trace()->close(); });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gpurel: GPUREL_TRACE disabled: %s\n", e.what());
      }
    }
  };
  static Holder holder;
  return holder.writer;
}

}  // namespace gpurel::obs
