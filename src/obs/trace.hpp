// Chrome-trace / Perfetto timeline output. A TraceWriter streams a valid
// JSON array of trace events ("X" complete spans plus "M" metadata) to a
// file; load the result in https://ui.perfetto.dev or chrome://tracing.
//
// Two process groups (pids) keep wall-clock and simulated time apart:
//   kWallPid — campaign/beam chunks per worker thread, Study stages
//              (ts = wall-clock microseconds since the writer opened);
//   kSimPid  — kernel launches and per-SM block residency emitted by
//              obs::SimTracer (ts = simulated cycles, rendered as "us").
//
// Like telemetry, tracing is strictly observational: it reads timestamps and
// simulator state but never feeds anything back into RNG, scheduling, or
// results (pinned by tests/test_determinism.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "common/telemetry.hpp"

namespace gpurel::obs {

/// Wall-clock track group: campaign chunks (tid = worker), Study stages.
inline constexpr int kWallPid = 1;
/// Simulated-cycles track group: kernel spans and SM residency lanes.
inline constexpr int kSimPid = 2;

class TraceWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Wall-clock microseconds since this writer was opened (span timestamps
  /// in the kWallPid group use this clock).
  double now_us() const { return since_open_.elapsed_ms() * 1000.0; }

  /// Emit one complete ("X") span. `args` become the event's args object.
  void complete(std::string_view name, std::string_view category, int pid,
                int tid, double ts_us, double dur_us,
                std::initializer_list<telemetry::Field> args = {});
  /// Emit an instant ("i") event (thread scope).
  void instant(std::string_view name, std::string_view category, int pid,
               int tid, double ts_us,
               std::initializer_list<telemetry::Field> args = {});

  /// Name a track group / track in the viewer. Idempotent per (pid[, tid]).
  void name_process(int pid, std::string_view name);
  void name_thread(int pid, int tid, std::string_view name);

  std::uint64_t events_emitted() const { return emitted_.value(); }

  /// Write the closing bracket and close the file (also done by the
  /// destructor). Further emits are dropped.
  void close();

 private:
  void emit(const std::string& event_json);

  std::FILE* file_;
  std::mutex mu_;
  telemetry::Timer since_open_;
  telemetry::Counter emitted_;
  bool first_ = true;
  std::set<int> named_processes_;
  std::set<std::pair<int, int>> named_threads_;
};

/// Process-wide writer configured by GPUREL_TRACE=<path> (nullptr when unset
/// or empty; opened lazily on first call, warns once if unopenable).
TraceWriter* env_trace();

/// The writer a component should use: the configured one when non-null, else
/// the GPUREL_TRACE fallback, else nullptr (disabled).
inline TraceWriter* resolve_trace(TraceWriter* configured) {
  return configured != nullptr ? configured : env_trace();
}

}  // namespace gpurel::obs
