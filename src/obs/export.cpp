#include "obs/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/metrics.hpp"

#ifdef __linux__
#include <cstring>
#include <fstream>
#include <string>
#endif

namespace gpurel::obs {

namespace {

/// Peak resident set size of this process in bytes (0 where unavailable).
double peak_rss_bytes() {
#ifdef __linux__
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    // "VmHWM:     12345 kB"
    return std::strtod(line.c_str() + 6, nullptr) * 1024.0;
  }
#endif
  return 0.0;
}

}  // namespace

std::string prometheus_path_for(const std::string& metrics_path) {
  const std::string json_ext = ".json";
  if (metrics_path.size() > json_ext.size() &&
      metrics_path.compare(metrics_path.size() - json_ext.size(),
                           json_ext.size(), json_ext) == 0)
    return metrics_path.substr(0, metrics_path.size() - json_ext.size()) +
           ".prom";
  return metrics_path + ".prom";
}

Exporter::Exporter(std::string metrics_path, std::string trace_path)
    : metrics_path_(std::move(metrics_path)) {
  if (metrics_path_.empty()) {
    const char* env = std::getenv("GPUREL_METRICS");
    if (env != nullptr) metrics_path_ = env;
  }
  if (!trace_path.empty()) {
    try {
      owned_trace_ = std::make_unique<TraceWriter>(trace_path);
      trace_ = owned_trace_.get();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gpurel: --trace-out disabled: %s\n", e.what());
    }
  } else {
    trace_ = env_trace();
  }
}

Exporter::~Exporter() { flush(); }

void Exporter::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (owned_trace_ != nullptr) owned_trace_->close();
  if (metrics_path_.empty()) return;
  Registry& reg = Registry::global();
  if (const double rss = peak_rss_bytes(); rss > 0.0)
    reg.gauge("gpurel_process_peak_rss_bytes").set_max(rss);
  reg.write_json(metrics_path_);
  reg.write_prometheus(prometheus_path_for(metrics_path_));
}

}  // namespace gpurel::obs
