// Command-line plumbing shared by bench and example mains: one Exporter
// owns the optional --trace-out writer and, on flush/destruction, snapshots
// the global metrics registry to --metrics-out as JSON plus the Prometheus
// text exposition alongside it. Empty paths fall back to the GPUREL_METRICS
// and GPUREL_TRACE environment variables; unset means disabled.
#pragma once

#include <memory>
#include <string>

#include "obs/trace.hpp"

namespace gpurel::obs {

/// Where the Prometheus rendering of `metrics_path` goes: the same path with
/// a ".json" suffix swapped for ".prom", else path + ".prom".
std::string prometheus_path_for(const std::string& metrics_path);

class Exporter {
 public:
  /// Paths may be empty (env fallback applies). An unopenable trace path
  /// warns and disables tracing rather than aborting the run.
  Exporter(std::string metrics_path, std::string trace_path);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// The trace writer campaigns/profilers should use, or null when tracing
  /// is disabled. (Metrics need no handle: the registry is process-global.)
  TraceWriter* trace() const { return trace_; }

  /// Write metrics (JSON + Prometheus) and close the trace. Idempotent;
  /// also run by the destructor.
  void flush();

 private:
  std::string metrics_path_;
  std::unique_ptr<TraceWriter> owned_trace_;
  TraceWriter* trace_ = nullptr;
  bool flushed_ = false;
};

}  // namespace gpurel::obs
