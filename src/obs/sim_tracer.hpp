// SimObserver that renders a simulated-time timeline: one span per kernel
// launch plus per-SM block-residency lanes, written as Chrome-trace events
// with ts/dur in simulated cycles (shown as "us" by the viewers). Each
// tracer instance claims its own trace process group so several traced
// workloads in one run stay visually separate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/observer.hpp"

namespace gpurel::obs {

class SimTracer final : public sim::SimObserver {
 public:
  /// `label` names the trace process group (typically the workload name).
  SimTracer(TraceWriter& writer, std::string label);

  unsigned wants() const override { return kWantsBlocks; }

  void on_launch_begin(const sim::LaunchInfo& info, sim::Machine&) override;
  void on_launch_end(const sim::LaunchStats& stats) override;
  void on_block_placed(unsigned sm, unsigned cta, std::uint64_t cycle) override;
  void on_block_retired(unsigned sm, unsigned cta,
                        std::uint64_t cycle) override;

 private:
  /// First free residency lane on `sm` at time `from` (extends the lane's
  /// busy horizon to `until`). Lanes map to viewer threads, so concurrent
  /// blocks on one SM never share a track.
  int lane_for(unsigned sm, double from, double until);

  TraceWriter& writer_;
  std::string label_;
  int pid_;
  // Launches within a trial each restart at cycle 0; the offset strings them
  // into one monotonic timeline.
  double cycle_offset_ = 0.0;
  double launch_start_ = 0.0;
  std::string launch_name_;
  unsigned launch_ordinal_ = 0;
  std::map<std::pair<unsigned, unsigned>, double> open_blocks_;  // (sm,cta)->ts
  std::map<unsigned, std::vector<double>> sm_lanes_;  // sm -> busy-until
};

}  // namespace gpurel::obs
